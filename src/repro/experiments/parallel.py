"""Parallel sweep execution over a process pool.

Every paper figure is a grid of independent ``(SweepPoint, seed)``
simulation cells; this module fans them out over ``multiprocessing``
workers and reassembles the per-point averages in order, so
``run_sweep(points, workers=N)`` returns a result list **bitwise
identical** to the serial path — each cell is a deterministic function
of its inputs, and aggregation happens in the parent in the same seed
order :func:`~repro.experiments.sweep.run_point` uses.

Two execution regimes share the cell enumeration:

* the **fast path** (no resilience options) chunks cells contiguously
  to amortise IPC and hit worker-side caches; by default it runs on the
  persistent **warm pool** (:mod:`repro.experiments.pool`): workers are
  spawned once per process lifetime and reused across ``run_sweep``
  calls, each seed group's workload/master-log inputs are built once in
  the parent and shipped through a shared-memory arena (so the next
  seed's inputs generate while workers crunch the current one), and
  chunk size adapts to the measured per-cell cost.  ``warm=False``
  falls back to the cold per-sweep pool.  Either way a dead worker
  aborts the sweep with an error naming the unfinished cells;
* the **resilient path** (any of ``checkpoint_dir`` / ``retry`` /
  ``chaos`` set) submits one cell per task so failures are attributable:
  completed cells are persisted atomically through
  :class:`~repro.resilience.CellStore` (a killed sweep resumes
  bitwise-identically), cells lost to worker crashes or in-cell
  exceptions are resubmitted under the
  :class:`~repro.resilience.RetryPolicy` backoff schedule, persistently
  failing cells are quarantined into ``quarantine.json`` instead of
  aborting, and a pool that keeps breaking degrades to in-process
  execution.  The :class:`~repro.resilience.ChaosConfig` fault-injection
  hooks (default off) ride the same path so the test suites can rehearse
  every one of those scenarios deterministically.

Design notes
------------
* Cells are enumerated **seed-major**: the expensive per-cell inputs
  (workload draw, master failure log) depend on the seed but not on the
  swept parameter, so neighbouring cells share a seed and hit the
  module-level caches in :mod:`repro.experiments.sweep` (worker-side
  memoisation — caches persist for the life of each worker process).
* Workers are forked, so they also inherit any caches the parent has
  already warmed.
* Scheduling is deterministic in *value*: results are keyed by cell
  index and re-ordered before averaging, so neither chunk completion
  order nor retry order can affect the output.
* Platforms without ``fork`` (Windows, some sandboxes) fall back to
  in-process execution, as does ``workers <= 1``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments import pool as pool_mod
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    _result_cache,
    run_point,
    simulate_cell,
    simulate_cell_obs,
)
from repro.failures.synthetic import BurstFailureModel
from repro.metrics.report import SimulationReport
from repro.obs.aggregate import CellObs, SweepObsCollector
from repro.obs.log import get_logger
from repro.obs.metrics import count_active
from repro.resilience import (
    CellStore,
    ChaosConfig,
    Quarantine,
    QuarantineEntry,
    ResilientSweepOutcome,
    RetryPolicy,
    SweepRunStats,
    cell_key,
    cell_timeout,
    corrupt_checkpoint,
    inject_pre_cell,
)

logger = get_logger(__name__)

#: Upper bound on chunks per worker: small enough to amortise IPC, large
#: enough to load-balance uneven cell costs.
_CHUNKS_PER_WORKER = 4

#: One sweep cell: ``((point_index, seed_index), point, seed)``.
Cell = tuple[tuple[int, int], SweepPoint, int]


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count for figure regeneration.

    ``REPRO_FIG_WORKERS`` wins when set; otherwise all cores but one so
    the parent (and the user's terminal) stay responsive.
    """
    env = os.environ.get("REPRO_FIG_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            raise ExperimentError(
                f"REPRO_FIG_WORKERS must be an integer, got {env!r}"
            ) from None
    return max(1, (os.cpu_count() or 2) - 1)


def _run_cell_chunk(
    chunk: Sequence[tuple[tuple[int, int], SweepPoint, int, BurstFailureModel]],
    with_obs: bool = False,
) -> list[tuple[tuple[int, int], SimulationReport, CellObs | None]]:
    """Fast-path worker entry point: run a contiguous slice of cells.

    With ``with_obs`` each cell also returns its picklable observability
    payload (metrics snapshot + trace records) for the parent to merge.
    """
    out: list[tuple[tuple[int, int], SimulationReport, CellObs | None]] = []
    for cell_id, point, seed, model in chunk:
        if with_obs:
            report, obs = simulate_cell_obs(point, seed, model)
        else:
            report, obs = simulate_cell(point, seed, model), None
        out.append((cell_id, report, obs))
    return out


def _run_cell_task(
    cell_id: tuple[int, int],
    point: SweepPoint,
    seed: int,
    model: BurstFailureModel,
    attempt: int,
    chaos: ChaosConfig | None,
    timeout_s: float | None,
    with_obs: bool,
) -> tuple[tuple[int, int], SimulationReport, CellObs | None]:
    """Resilient-path worker entry point: one cell per task.

    Single-cell tasks make failures attributable — an exception names
    exactly one cell, and a pool breakage loses exactly the in-flight
    cells — at the price of more IPC, which resilience callers accept.
    Chaos injection and the per-cell wall-clock timeout both live inside
    the task so they apply identically in workers and in-process.
    """
    with cell_timeout(timeout_s):
        inject_pre_cell(chaos, cell_id, attempt, in_worker=True)
        if with_obs:
            report, obs = simulate_cell_obs(point, seed, model)
        else:
            report, obs = simulate_cell(point, seed, model), None
    return cell_id, report, obs


@dataclass
class SweepExecutor:
    """Fans sweep cells out over a process pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` resolves via :func:`default_workers`.
    chunk_size:
        Fast-path cells per task; ``None`` derives a deterministic size
        from the cell and worker counts.
    log_interval_s:
        Minimum seconds between progress/ETA log lines.
    checkpoint_dir:
        Persist every completed cell into a
        :class:`~repro.resilience.CellStore` rooted here; with
        ``resume`` (default), already-stored cells are restored instead
        of recomputed.  Enables the resilient path.
    retry:
        :class:`~repro.resilience.RetryPolicy` for crashed/raising
        cells; any resilient run without one uses the defaults.
    chaos:
        :class:`~repro.resilience.ChaosConfig` fault injection (testing
        only; default off).
    resume:
        Whether to trust existing checkpoint cells (verified reads) or
        recompute everything while still writing checkpoints.
    min_cells_per_worker:
        Fast-path parallel cutover: a sweep with fewer than
        ``min_cells_per_worker * workers`` cells runs in-process even
        when workers were requested — pool spawn plus per-worker table
        warm-up costs more than it buys on small grids (BENCH_core.json
        had an 8-point sweep *slower* with 2 workers than serial).  Set
        to 0 to force the pool whenever workers > 1.  The cutover is
        decided *before* any pool exists, so sub-cutover grids never
        spin up (or touch) the warm pool.
    warm:
        Fast-path pool regime: ``True`` (default) runs on the
        process-wide persistent warm pool with shared-memory arenas
        (:mod:`repro.experiments.pool`); ``False`` restores the cold
        per-sweep pool.  Results are bitwise identical either way.
    sleep:
        Backoff clock, injectable so tests can fake it.
    """

    workers: int | None = None
    chunk_size: int | None = None
    log_interval_s: float = 5.0
    checkpoint_dir: str | Path | None = None
    retry: RetryPolicy | None = None
    chaos: ChaosConfig | None = None
    resume: bool = True
    min_cells_per_worker: int = 10
    warm: bool = True
    sleep: Callable[[float], None] = field(default=time.sleep)

    @property
    def resilient(self) -> bool:
        """Whether any resilience feature routes this run off the fast
        path (chunked pool execution with fail-fast semantics)."""
        return (
            self.checkpoint_dir is not None
            or self.retry is not None
            or (self.chaos is not None and self.chaos.enabled)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        points: Sequence[SweepPoint],
        seeds: Sequence[int],
        failure_model: BurstFailureModel | None = None,
        collector: SweepObsCollector | None = None,
    ) -> list[SweepResult]:
        """Run every cell of a sweep; order and values match serial.

        Thin wrapper over :meth:`run_outcome` for callers that only want
        the results (entries are ``None`` only for points whose every
        seed was quarantined, which requires resilience options on).
        """
        return self.run_outcome(points, seeds, failure_model, collector).results

    def run_outcome(
        self,
        points: Sequence[SweepPoint],
        seeds: Sequence[int],
        failure_model: BurstFailureModel | None = None,
        collector: SweepObsCollector | None = None,
    ) -> ResilientSweepOutcome:
        """Run every cell of a sweep and report what resilience did.

        An observability ``collector`` disables the result-cache
        shortcut (cached results carry no metrics or trace) and receives
        every computed cell's payload; the merge order inside the
        collector is sorted cell id, so aggregated metrics are
        independent of completion order and identical to the serial
        path's.  Cells restored from a checkpoint contribute no
        metrics/trace (they were not executed).
        """
        model = failure_model or BurstFailureModel()
        seeds = tuple(seeds)
        if not seeds:
            raise ExperimentError("cannot run a sweep across zero seeds")
        n_workers = self.workers if self.workers is not None else default_workers()
        resilient = self.resilient
        stats = SweepRunStats()

        results: list[SweepResult | None] = [None] * len(points)
        pending: list[int] = []
        for i, point in enumerate(points):
            # The in-memory memo is bypassed on the resilient path: it
            # cannot say which cells are durably checkpointed, and a
            # resumable sweep must leave a complete on-disk record.
            cached = (
                _result_cache.get((point, seeds, model))
                if collector is None and not resilient
                else None
            )
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)
        if not pending:
            stats.mode = "cached"
            return ResilientSweepOutcome(results, (), stats)

        if resilient:
            return self._run_resilient(
                points, pending, seeds, model, n_workers, collector, results, stats
            )

        # The serial cutover is decided here, before any pool is touched:
        # a sub-cutover grid must never pay a warm-pool spawn.
        n_cells = len(pending) * len(seeds)
        auto_serial = n_cells < self.min_cells_per_worker * n_workers
        if n_workers <= 1 or n_cells <= 1 or auto_serial or not fork_available():
            if n_workers > 1 and not fork_available():
                logger.info(
                    "platform lacks fork start method; running %d cells "
                    "in-process",
                    n_cells,
                )
            elif n_workers > 1 and auto_serial:
                logger.info(
                    "sweep mode: serial — %d cells is below the parallel "
                    "cutover (min_cells_per_worker=%d x %d workers)",
                    n_cells,
                    self.min_cells_per_worker,
                    n_workers,
                )
            stats.mode = "serial"
            for i in pending:
                results[i] = run_point(
                    points[i], seeds, model, collector=collector, point_index=i
                )
            return ResilientSweepOutcome(results, (), stats)

        stats.mode = "warm" if self.warm else "parallel"
        stats.workers_used = n_workers
        logger.info(
            "sweep mode: %s — %d cells over %d workers",
            stats.mode,
            n_cells,
            n_workers,
        )
        if self.warm:
            reports, observations = self._execute_warm(
                points, pending, seeds, model, n_workers, stats,
                with_obs=collector is not None,
            )
        else:
            reports, observations = self._execute(
                points, pending, seeds, model, n_workers,
                with_obs=collector is not None,
            )
        if collector is not None:
            for (i, si), obs in observations.items():
                collector.add_cell(i, si, obs)
        for i in pending:
            point_reports = [reports[(i, s)] for s in range(len(seeds))]
            result = SweepResult.from_reports(points[i], point_reports)
            _result_cache[(points[i], seeds, model)] = result
            results[i] = result
        return ResilientSweepOutcome(results, (), stats)

    # ------------------------------------------------------------------
    # fast path (no resilience): chunked fan-out, fail-fast
    # ------------------------------------------------------------------
    def _execute(
        self,
        points: Sequence[SweepPoint],
        pending: Sequence[int],
        seeds: tuple[int, ...],
        model: BurstFailureModel,
        n_workers: int,
        with_obs: bool = False,
    ) -> tuple[
        dict[tuple[int, int], SimulationReport],
        dict[tuple[int, int], CellObs],
    ]:
        """Run the uncached cells; returns ``(point_i, seed_i)``-keyed
        reports plus (when ``with_obs``) observability payloads."""
        # Seed-major enumeration: contiguous chunks share a seed, so a
        # worker's workload/master-log caches are hit by every cell of
        # the chunk after the first.
        cells = [
            ((i, si), points[i], seeds[si], model)
            for si in range(len(seeds))
            for i in pending
        ]
        n_cells = len(cells)
        chunk_size = self.chunk_size or max(
            1, math.ceil(n_cells / (n_workers * _CHUNKS_PER_WORKER))
        )
        chunks = [
            cells[lo : lo + chunk_size] for lo in range(0, n_cells, chunk_size)
        ]
        logger.info(
            "sweep fan-out: %d cells in %d chunks over %d workers",
            n_cells,
            len(chunks),
            n_workers,
        )
        reports: dict[tuple[int, int], SimulationReport] = {}
        observations: dict[tuple[int, int], CellObs] = {}
        started = time.monotonic()
        last_log = started
        ctx = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(chunks)), mp_context=ctx
            ) as pool:
                futures = {
                    pool.submit(_run_cell_chunk, chunk, with_obs)
                    for chunk in chunks
                }
                while futures:
                    done, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        for cell_id, report, obs in future.result():
                            reports[cell_id] = report
                            if obs is not None:
                                observations[cell_id] = obs
                    now = time.monotonic()
                    if now - last_log >= self.log_interval_s and reports:
                        last_log = now
                        elapsed = now - started
                        rate = len(reports) / elapsed
                        remaining = (n_cells - len(reports)) / rate if rate else 0.0
                        logger.info(
                            "sweep progress: %d/%d cells (%.2f cells/s, "
                            "ETA %.0fs)",
                            len(reports),
                            n_cells,
                            rate,
                            remaining,
                        )
        except BrokenProcessPool as exc:
            unfinished = sorted(
                cell_id for cell_id, *_ in cells if cell_id not in reports
            )
            shown = ", ".join(
                f"(point {pi}, seed#{si})" for pi, si in unfinished[:8]
            )
            if len(unfinished) > 8:
                shown += f", ... {len(unfinished) - 8} more"
            raise ExperimentError(
                f"sweep worker process died before finishing its cells "
                f"(killed or crashed); {len(reports)}/{n_cells} cells "
                f"completed; unfinished after 1 attempt: {shown}; pass "
                f"retry=RetryPolicy(...) to run_sweep for automatic "
                f"resubmission, or rerun with workers=1 to isolate"
            ) from exc
        elapsed = time.monotonic() - started
        logger.info(
            "sweep complete: %d cells in %.1fs (%.2f cells/s)",
            n_cells,
            elapsed,
            n_cells / elapsed if elapsed > 0 else float("inf"),
        )
        return reports, observations

    # ------------------------------------------------------------------
    # warm path: persistent pool, shared-memory arenas, pipelined seeds
    # ------------------------------------------------------------------
    def _execute_warm(
        self,
        points: Sequence[SweepPoint],
        pending: Sequence[int],
        seeds: tuple[int, ...],
        model: BurstFailureModel,
        n_workers: int,
        stats: SweepRunStats,
        with_obs: bool = False,
    ) -> tuple[
        dict[tuple[int, int], SimulationReport],
        dict[tuple[int, int], CellObs],
    ]:
        """Run the uncached cells on the persistent warm pool.

        Seed groups are pipelined: seed ``k``'s chunks are submitted the
        moment its arena is built, then seed ``k+1``'s inputs generate
        in the parent while the workers crunch — the serial prologue
        (workload + master-log generation) overlaps cell execution
        instead of preceding it.  Each arena ships only cache entries no
        earlier arena of this sweep carried, so total arena bytes stay
        proportional to the distinct inputs.
        """
        warm = pool_mod.get_warm_pool()
        spawns_before = warm.spawns
        executor = warm.ensure(n_workers)
        stats.pool_reused = warm.spawns == spawns_before

        n_cells = len(pending) * len(seeds)
        chunk_size = self.chunk_size or pool_mod.adaptive_chunk_size(
            n_cells, n_workers, pool_mod.cell_cost_estimate_s()
        )
        stats.chunk_size = chunk_size
        reports: dict[tuple[int, int], SimulationReport] = {}
        observations: dict[tuple[int, int], CellObs] = {}
        started = time.monotonic()
        last_log = started

        def collect(done_futures) -> None:
            nonlocal last_log
            for future in done_futures:
                for cell_id, report, obs in future.result():
                    reports[cell_id] = report
                    if obs is not None:
                        observations[cell_id] = obs
            now = time.monotonic()
            if now - last_log >= self.log_interval_s and reports:
                last_log = now
                elapsed = now - started
                rate = len(reports) / elapsed
                remaining = (n_cells - len(reports)) / rate if rate else 0.0
                logger.info(
                    "sweep progress: %d/%d cells (%.2f cells/s, ETA %.0fs)",
                    len(reports),
                    n_cells,
                    rate,
                    remaining,
                )

        arenas: list[pool_mod.SharedArena] = []
        shipped: set = set()
        futures: set = set()
        try:
            try:
                for si in range(len(seeds)):
                    arena = pool_mod.build_seed_arena(
                        points, pending, seeds[si], model,
                        warm.next_generation(), shipped,
                    )
                    arenas.append(arena)
                    stats.arena_bytes += arena.handle.size
                    group: list[Cell] = [
                        ((i, si), points[i], seeds[si]) for i in pending
                    ]
                    for lo in range(0, len(group), chunk_size):
                        futures.add(
                            executor.submit(
                                pool_mod._warm_run_chunk,
                                arena.handle,
                                group[lo : lo + chunk_size],
                                model,
                                with_obs,
                            )
                        )
                    # Opportunistic drain between seed groups keeps the
                    # result dict and progress log current without
                    # blocking the next arena build.
                    finished = {f for f in futures if f.done()}
                    futures -= finished
                    collect(finished)
                while futures:
                    done, futures = wait(futures, return_when=FIRST_COMPLETED)
                    collect(done)
            except BrokenProcessPool as exc:
                warm.mark_broken()
                unfinished = sorted(
                    (i, si)
                    for si in range(len(seeds))
                    for i in pending
                    if (i, si) not in reports
                )
                shown = ", ".join(
                    f"(point {pi}, seed#{si})" for pi, si in unfinished[:8]
                )
                if len(unfinished) > 8:
                    shown += f", ... {len(unfinished) - 8} more"
                raise ExperimentError(
                    f"warm-pool sweep worker process died before finishing its "
                    f"cells (killed or crashed); {len(reports)}/{n_cells} "
                    f"cells completed; unfinished after 1 attempt: {shown}; "
                    f"the warm pool will respawn on the next sweep; pass "
                    f"retry=RetryPolicy(...) to run_sweep for automatic "
                    f"resubmission, or rerun with workers=1 to isolate"
                ) from exc
        finally:
            # All futures have resolved (success path drained them; the
            # breakage path shut the pool down), so no worker can still
            # attach these arenas.
            for arena in arenas:
                arena.unlink()
        elapsed = time.monotonic() - started
        pool_mod.observe_cell_cost(elapsed / n_cells if n_cells else 0.0)
        logger.info(
            "sweep complete: %d cells in %.1fs (%.2f cells/s, "
            "chunk_size=%d, arena=%dB, pool %s)",
            n_cells,
            elapsed,
            n_cells / elapsed if elapsed > 0 else float("inf"),
            chunk_size,
            stats.arena_bytes,
            "reused" if stats.pool_reused else "spawned",
        )
        return reports, observations

    # ------------------------------------------------------------------
    # resilient path: checkpoint restore, per-cell retry, quarantine
    # ------------------------------------------------------------------
    def _run_resilient(
        self,
        points: Sequence[SweepPoint],
        pending: Sequence[int],
        seeds: tuple[int, ...],
        model: BurstFailureModel,
        n_workers: int,
        collector: SweepObsCollector | None,
        results: list[SweepResult | None],
        stats: SweepRunStats,
    ) -> ResilientSweepOutcome:
        policy = self.retry or RetryPolicy()
        store = (
            CellStore(self.checkpoint_dir)
            if self.checkpoint_dir is not None
            else None
        )
        quarantine = Quarantine()
        with_obs = collector is not None
        cells: list[Cell] = [
            ((i, si), points[i], seeds[si])
            for si in range(len(seeds))
            for i in pending
        ]
        reports: dict[tuple[int, int], SimulationReport] = {}
        observations: dict[tuple[int, int], CellObs] = {}
        keys: dict[tuple[int, int], str] = {}
        if store is not None:
            for cell_id, point, seed in cells:
                keys[cell_id] = cell_key(point, seed, model)
            if self.resume:
                for cell_id, point, seed in cells:
                    restored = store.get(keys[cell_id])
                    if restored is not None:
                        reports[cell_id] = restored
                if reports:
                    logger.info(
                        "checkpoint resume: restored %d/%d cells from %s",
                        len(reports),
                        len(cells),
                        store.root,
                    )
                    if with_obs:
                        logger.info(
                            "restored cells were not executed and "
                            "contribute no metrics/trace to the collector"
                        )

        remaining = [cell for cell in cells if cell[0] not in reports]
        if not remaining:
            stats.mode = "cached"
        elif n_workers > 1 and len(remaining) > 1 and fork_available():
            stats.mode = "parallel"
            stats.workers_used = n_workers
        else:
            stats.mode = "serial"
        if remaining:
            if stats.mode == "parallel":
                self._execute_resilient(
                    remaining, model, n_workers, with_obs, policy, store,
                    keys, stats, quarantine, reports, observations,
                )
            else:
                self._run_cells_inprocess(
                    remaining, model, with_obs, policy, store,
                    keys, stats, quarantine, reports, observations,
                )

        if store is not None:
            stats.checkpoint_hits = store.hits
            stats.checkpoint_misses = store.misses
            stats.checkpoint_corrupt = store.corrupt
            quarantine.write(store.quarantine_path)
        if collector is not None:
            for (i, si), obs in sorted(observations.items()):
                collector.add_cell(i, si, obs)

        for i in pending:
            present = [
                reports[(i, si)]
                for si in range(len(seeds))
                if (i, si) in reports
            ]
            if not present:
                logger.warning(
                    "sweep point %d lost every seed to quarantine; its "
                    "result is None",
                    i,
                )
                results[i] = None
                continue
            result = SweepResult.from_reports(points[i], present)
            if len(present) == len(seeds):
                # Only complete points enter the in-memory memo: a
                # partial average must never masquerade as the real one.
                _result_cache[(points[i], seeds, model)] = result
            results[i] = result

        stats.quarantined = len(quarantine)
        if quarantine:
            logger.warning(
                "sweep finished with %d quarantined cells: %s",
                len(quarantine),
                sorted(quarantine.cells()),
            )
        return ResilientSweepOutcome(results, tuple(quarantine.entries), stats)

    def _submit_cell(
        self,
        pool: ProcessPoolExecutor,
        cell: Cell,
        model: BurstFailureModel,
        attempt: int,
        policy: RetryPolicy,
        with_obs: bool,
    ):
        cell_id, point, seed = cell
        return pool.submit(
            _run_cell_task,
            cell_id,
            point,
            seed,
            model,
            attempt,
            self.chaos,
            policy.cell_timeout_s,
            with_obs,
        )

    def _execute_resilient(
        self,
        cells: list[Cell],
        model: BurstFailureModel,
        n_workers: int,
        with_obs: bool,
        policy: RetryPolicy,
        store: CellStore | None,
        keys: dict[tuple[int, int], str],
        stats: SweepRunStats,
        quarantine: Quarantine,
        reports: dict[tuple[int, int], SimulationReport],
        observations: dict[tuple[int, int], CellObs],
    ) -> None:
        """Pooled execution with one cell per task.

        A cell that raises is resubmitted (after backoff) into the same
        pool until it succeeds or exhausts its attempts.  A broken pool
        loses exactly the unfinished cells: the pool is rebuilt and they
        are resubmitted with an incremented attempt count; after
        ``policy.max_pool_rebuilds`` breakages the remaining cells
        degrade to in-process execution.
        """
        ctx = multiprocessing.get_context("fork")
        attempts = {cell[0]: 0 for cell in cells}
        queue: list[Cell] = list(cells)
        n_total = len(cells)
        started = time.monotonic()
        last_log = started
        logger.info(
            "resilient sweep fan-out: %d cells (one per task) over %d workers",
            n_total,
            n_workers,
        )
        while queue:
            pool = ProcessPoolExecutor(
                max_workers=min(n_workers, len(queue)), mp_context=ctx
            )
            future_cells: dict = {}
            try:
                for cell in queue:
                    future_cells[
                        self._submit_cell(
                            pool, cell, model, attempts[cell[0]], policy,
                            with_obs,
                        )
                    ] = cell
                queue = []
                while future_cells:
                    done, _ = wait(
                        set(future_cells), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        # Pop only after a non-breakage outcome: a future
                        # that surfaces BrokenProcessPool must stay in
                        # future_cells so its cell is counted as lost.
                        cell = future_cells[future]
                        cell_id = cell[0]
                        try:
                            _, report, obs = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            del future_cells[future]
                            attempts[cell_id] += 1
                            if not self._quarantine_or_backoff(
                                cell, exc, attempts[cell_id], policy,
                                quarantine, keys, stats,
                            ):
                                stats.retries += 1
                                count_active("resilience.cell.retries")
                                future_cells[
                                    self._submit_cell(
                                        pool, cell, model,
                                        attempts[cell_id], policy, with_obs,
                                    )
                                ] = cell
                        else:
                            del future_cells[future]
                            self._record_success(
                                cell, report, obs, store, keys,
                                stats, reports, observations,
                            )
                    now = time.monotonic()
                    if (
                        now - last_log >= self.log_interval_s
                        and stats.cells_computed
                    ):
                        last_log = now
                        elapsed = now - started
                        rate = stats.cells_computed / elapsed
                        logger.info(
                            "resilient sweep progress: %d/%d cells "
                            "(%.2f cells/s)",
                            stats.cells_computed,
                            n_total,
                            rate,
                        )
            except BrokenProcessPool:
                lost = list(future_cells.values()) + queue
                stats.pool_rebuilds += 1
                count_active("resilience.pool.rebuilds")
                survivors: list[Cell] = []
                for cell in lost:
                    cell_id = cell[0]
                    attempts[cell_id] += 1
                    crash = ExperimentError(
                        "worker process died while this cell was "
                        "in flight (pool breakage)"
                    )
                    if not self._quarantine_or_backoff(
                        cell, crash, attempts[cell_id], policy,
                        quarantine, keys, stats, wait_backoff=False,
                    ):
                        stats.resubmits += 1
                        count_active("resilience.cell.resubmits")
                        survivors.append(cell)
                if not survivors:
                    return
                if stats.pool_rebuilds > policy.max_pool_rebuilds:
                    stats.degraded = True
                    count_active("resilience.pool.degraded")
                    logger.warning(
                        "worker pool broke %d times (> max_pool_rebuilds="
                        "%d); degrading %d remaining cells to in-process "
                        "execution",
                        stats.pool_rebuilds,
                        policy.max_pool_rebuilds,
                        len(survivors),
                    )
                    self._run_cells_inprocess(
                        survivors, model, with_obs, policy, store,
                        keys, stats, quarantine, reports, observations,
                    )
                    return
                logger.warning(
                    "worker pool broke (rebuild %d/%d); resubmitting %d "
                    "lost cells",
                    stats.pool_rebuilds,
                    policy.max_pool_rebuilds,
                    len(survivors),
                )
                self.sleep(
                    policy.backoff_s((-1, stats.pool_rebuilds),
                                     stats.pool_rebuilds)
                )
                queue = survivors
            finally:
                # wait=True is cheap even for a broken pool (workers are
                # already dead) and keeps atexit from touching stale fds.
                pool.shutdown(wait=True, cancel_futures=True)

    def _run_cells_inprocess(
        self,
        cells: list[Cell],
        model: BurstFailureModel,
        with_obs: bool,
        policy: RetryPolicy,
        store: CellStore | None,
        keys: dict[tuple[int, int], str],
        stats: SweepRunStats,
        quarantine: Quarantine,
        reports: dict[tuple[int, int], SimulationReport],
        observations: dict[tuple[int, int], CellObs],
    ) -> None:
        """In-process execution with the same retry/quarantine contract.

        Serves three roles: resilient serial sweeps (``workers<=1``),
        platforms without ``fork``, and the degradation target when the
        pool keeps breaking.  Chaos kills are skipped here by design
        (see :func:`repro.resilience.inject_pre_cell`).
        """
        attempts = {cell[0]: 0 for cell in cells}
        for cell in cells:
            cell_id, point, seed = cell
            while True:
                attempt = attempts[cell_id]
                try:
                    with cell_timeout(policy.cell_timeout_s):
                        inject_pre_cell(
                            self.chaos, cell_id, attempt, in_worker=False
                        )
                        if with_obs:
                            report, obs = simulate_cell_obs(point, seed, model)
                        else:
                            report = simulate_cell(point, seed, model)
                            obs = None
                except Exception as exc:
                    attempts[cell_id] += 1
                    if self._quarantine_or_backoff(
                        cell, exc, attempts[cell_id], policy,
                        quarantine, keys, stats,
                    ):
                        break
                    stats.retries += 1
                    count_active("resilience.cell.retries")
                else:
                    self._record_success(
                        cell, report, obs, store, keys,
                        stats, reports, observations,
                    )
                    break

    # ------------------------------------------------------------------
    def _quarantine_or_backoff(
        self,
        cell: Cell,
        exc: BaseException,
        attempts_done: int,
        policy: RetryPolicy,
        quarantine: Quarantine,
        keys: dict[tuple[int, int], str],
        stats: SweepRunStats,
        wait_backoff: bool = True,
    ) -> bool:
        """Handle one cell failure; True when the cell was quarantined.

        Otherwise logs, sleeps the deterministic backoff (unless the
        caller batches the wait, as the pool-rebuild path does) and lets
        the caller resubmit.
        """
        cell_id, _, seed = cell
        if attempts_done >= policy.max_attempts:
            quarantine.add(
                QuarantineEntry(
                    point_index=cell_id[0],
                    seed_index=cell_id[1],
                    seed=seed,
                    attempts=attempts_done,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    key=keys.get(cell_id),
                )
            )
            count_active("resilience.cell.quarantined")
            logger.warning(
                "quarantining poison cell (point %d, seed#%d) after %d "
                "attempts: %s: %s",
                cell_id[0],
                cell_id[1],
                attempts_done,
                type(exc).__name__,
                exc,
            )
            return True
        delay = policy.backoff_s(cell_id, attempts_done)
        logger.warning(
            "cell (point %d, seed#%d) failed attempt %d/%d (%s: %s); "
            "retrying in %.3fs",
            cell_id[0],
            cell_id[1],
            attempts_done,
            policy.max_attempts,
            type(exc).__name__,
            exc,
            delay,
        )
        if wait_backoff:
            self.sleep(delay)
        return False

    def _record_success(
        self,
        cell: Cell,
        report: SimulationReport,
        obs: CellObs | None,
        store: CellStore | None,
        keys: dict[tuple[int, int], str],
        stats: SweepRunStats,
        reports: dict[tuple[int, int], SimulationReport],
        observations: dict[tuple[int, int], CellObs],
    ) -> None:
        cell_id, _, seed = cell
        reports[cell_id] = report
        if obs is not None:
            observations[cell_id] = obs
        stats.cells_computed += 1
        count_active("resilience.cell.computed")
        if store is not None:
            path = store.put(
                keys[cell_id], report, point_index=cell_id[0], seed=seed
            )
            if self.chaos is not None and self.chaos.should_corrupt(cell_id):
                corrupt_checkpoint(path, self.chaos, cell_id)
