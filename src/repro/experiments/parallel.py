"""Parallel sweep execution over a process pool.

Every paper figure is a grid of independent ``(SweepPoint, seed)``
simulation cells; this module fans them out over ``multiprocessing``
workers and reassembles the per-point averages in order, so
``run_sweep(points, workers=N)`` returns a result list **bitwise
identical** to the serial path — each cell is a deterministic function
of its inputs, and aggregation happens in the parent in the same seed
order :func:`~repro.experiments.sweep.run_point` uses.

Design notes
------------
* Cells are enumerated **seed-major** and chunked contiguously: the
  expensive per-cell inputs (workload draw, master failure log) depend on
  the seed but not on the swept parameter, so cells that share a seed
  land on the same worker and hit its module-level caches
  (worker-side memoisation — the caches in :mod:`repro.experiments.sweep`
  persist for the life of each worker process).
* Workers are forked, so they also inherit any caches the parent has
  already warmed.
* Chunking is deterministic (pure function of the cell count and worker
  count), results are keyed by cell index, and per-point reports are
  re-ordered to seed order before averaging — arrival order of chunk
  completions cannot affect the output.
* A worker that dies (OOM-kill, segfault, ``os._exit``) surfaces as
  :class:`~repro.errors.ExperimentError` via the executor's broken-pool
  detection rather than hanging the sweep.
* Platforms without ``fork`` (Windows, some sandboxes) fall back to
  in-process execution, as does ``workers <= 1``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    _result_cache,
    run_point,
    simulate_cell,
    simulate_cell_obs,
)
from repro.failures.synthetic import BurstFailureModel
from repro.metrics.report import SimulationReport
from repro.obs.aggregate import CellObs, SweepObsCollector
from repro.obs.log import get_logger

logger = get_logger(__name__)

#: Upper bound on chunks per worker: small enough to amortise IPC, large
#: enough to load-balance uneven cell costs.
_CHUNKS_PER_WORKER = 4


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Worker count for figure regeneration.

    ``REPRO_FIG_WORKERS`` wins when set; otherwise all cores but one so
    the parent (and the user's terminal) stay responsive.
    """
    env = os.environ.get("REPRO_FIG_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            raise ExperimentError(
                f"REPRO_FIG_WORKERS must be an integer, got {env!r}"
            ) from None
    return max(1, (os.cpu_count() or 2) - 1)


def _run_cell_chunk(
    chunk: Sequence[tuple[tuple[int, int], SweepPoint, int, BurstFailureModel]],
    with_obs: bool = False,
) -> list[tuple[tuple[int, int], SimulationReport, CellObs | None]]:
    """Worker entry point: run a contiguous slice of cells.

    With ``with_obs`` each cell also returns its picklable observability
    payload (metrics snapshot + trace records) for the parent to merge.
    """
    out: list[tuple[tuple[int, int], SimulationReport, CellObs | None]] = []
    for cell_id, point, seed, model in chunk:
        if with_obs:
            report, obs = simulate_cell_obs(point, seed, model)
        else:
            report, obs = simulate_cell(point, seed, model), None
        out.append((cell_id, report, obs))
    return out


@dataclass
class SweepExecutor:
    """Fans sweep cells out over a process pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` resolves via :func:`default_workers`.
    chunk_size:
        Cells per task; ``None`` derives a deterministic size from the
        cell and worker counts.
    log_interval_s:
        Minimum seconds between progress/ETA log lines.
    """

    workers: int | None = None
    chunk_size: int | None = None
    log_interval_s: float = 5.0

    def run(
        self,
        points: Sequence[SweepPoint],
        seeds: Sequence[int],
        failure_model: BurstFailureModel | None = None,
        collector: SweepObsCollector | None = None,
    ) -> list[SweepResult]:
        """Run every cell of a sweep; order and values match serial.

        An observability ``collector`` disables the result-cache
        shortcut (cached results carry no metrics or trace) and receives
        every cell's payload; the merge order inside the collector is
        sorted cell id, so aggregated metrics are independent of chunk
        completion order and identical to the serial path's.
        """
        model = failure_model or BurstFailureModel()
        seeds = tuple(seeds)
        if not seeds:
            raise ExperimentError("cannot run a sweep across zero seeds")
        n_workers = self.workers if self.workers is not None else default_workers()

        results: list[SweepResult | None] = [None] * len(points)
        pending: list[int] = []
        for i, point in enumerate(points):
            cached = (
                _result_cache.get((point, seeds, model))
                if collector is None
                else None
            )
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)
        if not pending:
            return results  # type: ignore[return-value]

        n_cells = len(pending) * len(seeds)
        if n_workers <= 1 or n_cells <= 1 or not fork_available():
            if n_workers > 1 and not fork_available():
                logger.info(
                    "platform lacks fork start method; running %d cells "
                    "in-process",
                    n_cells,
                )
            for i in pending:
                results[i] = run_point(
                    points[i], seeds, model, collector=collector, point_index=i
                )
            return results  # type: ignore[return-value]

        reports, observations = self._execute(
            points, pending, seeds, model, n_workers, with_obs=collector is not None
        )
        if collector is not None:
            for (i, si), obs in observations.items():
                collector.add_cell(i, si, obs)
        for i in pending:
            point_reports = [reports[(i, s)] for s in range(len(seeds))]
            result = SweepResult.from_reports(points[i], point_reports)
            _result_cache[(points[i], seeds, model)] = result
            results[i] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _execute(
        self,
        points: Sequence[SweepPoint],
        pending: Sequence[int],
        seeds: tuple[int, ...],
        model: BurstFailureModel,
        n_workers: int,
        with_obs: bool = False,
    ) -> tuple[
        dict[tuple[int, int], SimulationReport],
        dict[tuple[int, int], CellObs],
    ]:
        """Run the uncached cells; returns ``(point_i, seed_i)``-keyed
        reports plus (when ``with_obs``) observability payloads."""
        # Seed-major enumeration: contiguous chunks share a seed, so a
        # worker's workload/master-log caches are hit by every cell of
        # the chunk after the first.
        cells = [
            ((i, si), points[i], seeds[si], model)
            for si in range(len(seeds))
            for i in pending
        ]
        n_cells = len(cells)
        chunk_size = self.chunk_size or max(
            1, math.ceil(n_cells / (n_workers * _CHUNKS_PER_WORKER))
        )
        chunks = [
            cells[lo : lo + chunk_size] for lo in range(0, n_cells, chunk_size)
        ]
        logger.info(
            "sweep fan-out: %d cells in %d chunks over %d workers",
            n_cells,
            len(chunks),
            n_workers,
        )
        reports: dict[tuple[int, int], SimulationReport] = {}
        observations: dict[tuple[int, int], CellObs] = {}
        started = time.monotonic()
        last_log = started
        ctx = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(chunks)), mp_context=ctx
            ) as pool:
                futures = {
                    pool.submit(_run_cell_chunk, chunk, with_obs)
                    for chunk in chunks
                }
                while futures:
                    done, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        for cell_id, report, obs in future.result():
                            reports[cell_id] = report
                            if obs is not None:
                                observations[cell_id] = obs
                    now = time.monotonic()
                    if now - last_log >= self.log_interval_s and reports:
                        last_log = now
                        elapsed = now - started
                        rate = len(reports) / elapsed
                        remaining = (n_cells - len(reports)) / rate if rate else 0.0
                        logger.info(
                            "sweep progress: %d/%d cells (%.2f cells/s, "
                            "ETA %.0fs)",
                            len(reports),
                            n_cells,
                            rate,
                            remaining,
                        )
        except BrokenProcessPool as exc:
            raise ExperimentError(
                "sweep worker process died before finishing its cells "
                "(killed or crashed); rerun with workers=1 to isolate"
            ) from exc
        elapsed = time.monotonic() - started
        logger.info(
            "sweep complete: %d cells in %.1fs (%.2f cells/s)",
            n_cells,
            elapsed,
            n_cells / elapsed if elapsed > 0 else float("inf"),
        )
        return reports, observations
