"""Sweep execution with multi-seed averaging.

A :class:`SweepPoint` pins every axis of one experiment cell; the runner
executes it across seeds and averages the metrics, because single-seed
failure placement is noisy at the modest failure counts a short synthetic
trace implies.

Within a sweep the *workload* is held fixed across the swept parameter
(the paper replays one log per figure) by seeding the workload draw from
the base seed only; failure logs for a failure-count axis are *nested* —
lower counts are thinned from the same master log — mirroring the
paper's "artificially varying the number of failures" on one trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.config import SimulationConfig
from repro.core.policies.registry import make_policy
from repro.core.simulator import simulate
from repro.errors import ExperimentError
from repro.failures.events import FailureLog
from repro.failures.scaling import rescale_failures
from repro.failures.synthetic import BurstFailureModel, generate_failures
from repro.metrics.report import SimulationReport
from repro.prediction.base import PartitionFailureRule
from repro.workloads.job import Workload
from repro.workloads.models import site_model
from repro.workloads.scaling import fit_to_machine, scale_load
from repro.workloads.synthetic import generate_workload


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid."""

    site: str
    n_jobs: int
    load_scale: float
    n_failures: int
    policy: str
    parameter: float
    pf_rule: PartitionFailureRule = PartitionFailureRule.MAX
    config: SimulationConfig = field(default_factory=SimulationConfig)


@dataclass(frozen=True)
class SweepResult:
    """Seed-averaged metrics for one sweep point."""

    point: SweepPoint
    n_seeds: int
    avg_bounded_slowdown: float
    avg_response: float
    avg_wait: float
    utilized: float
    unused: float
    lost: float
    job_kills: float
    failures_hit_jobs: float

    @classmethod
    def from_reports(cls, point: SweepPoint, reports: Sequence[SimulationReport]) -> "SweepResult":
        if not reports:
            raise ExperimentError("cannot aggregate zero reports")
        n = len(reports)

        def mean(get) -> float:
            return math.fsum(get(r) for r in reports) / n

        return cls(
            point=point,
            n_seeds=n,
            avg_bounded_slowdown=mean(lambda r: r.timing.avg_bounded_slowdown),
            avg_response=mean(lambda r: r.timing.avg_response),
            avg_wait=mean(lambda r: r.timing.avg_wait),
            utilized=mean(lambda r: r.capacity.utilized),
            unused=mean(lambda r: r.capacity.unused),
            lost=mean(lambda r: r.capacity.lost),
            job_kills=mean(lambda r: r.counters.job_kills),
            failures_hit_jobs=mean(lambda r: r.counters.failures_hit_jobs),
        )


# ----------------------------------------------------------------------
# workload / failure-log caches: sweeps share these across cells
# ----------------------------------------------------------------------

_workload_cache: dict[tuple, Workload] = {}
_master_log_cache: dict[tuple, FailureLog] = {}


def _workload_for(point: SweepPoint, seed: int) -> Workload:
    key = (point.site, point.n_jobs, point.load_scale, seed, point.config.dims.as_tuple())
    workload = _workload_cache.get(key)
    if workload is None:
        raw = generate_workload(site_model(point.site), point.n_jobs, seed=seed)
        workload = fit_to_machine(scale_load(raw, point.load_scale), point.config.dims)
        _workload_cache[key] = workload
    return workload


#: Master failure logs are generated at this count and thinned down, so a
#: failure-count axis is nested (monotone by construction).
MASTER_FAILURE_COUNT = 8192


def _failures_for(
    point: SweepPoint, workload: Workload, seed: int, model: BurstFailureModel
) -> FailureLog:
    horizon = max(workload.span * 1.5, 3600.0)
    key = (point.config.dims.as_tuple(), round(horizon, 3), seed, model)
    master = _master_log_cache.get(key)
    if master is None:
        master = generate_failures(
            point.config.dims, MASTER_FAILURE_COUNT, horizon, model=model, seed=seed + 1
        )
        _master_log_cache[key] = master
    if point.n_failures > MASTER_FAILURE_COUNT:
        raise ExperimentError(
            f"n_failures {point.n_failures} exceeds master log size "
            f"{MASTER_FAILURE_COUNT}"
        )
    return rescale_failures(master, point.n_failures, seed=seed + 2)


_result_cache: dict[tuple, SweepResult] = {}


def run_point(
    point: SweepPoint,
    seeds: Iterable[int] = (0, 1, 2),
    failure_model: BurstFailureModel | None = None,
) -> SweepResult:
    """Run one sweep cell across ``seeds`` and average.

    Results are memoised on ``(point, seeds, model)`` — different paper
    figures share many cells (e.g. Figs. 4 and 5 plot different metrics
    of the same sweep), so a full benchmark session reuses them.
    """
    model = failure_model or BurstFailureModel()
    seeds = tuple(seeds)
    cache_key = (point, seeds, model)
    cached = _result_cache.get(cache_key)
    if cached is not None:
        return cached
    reports = []
    for seed in seeds:
        workload = _workload_for(point, seed)
        failures = _failures_for(point, workload, seed, model)
        policy = make_policy(
            point.policy,
            failure_log=failures,
            parameter=point.parameter,
            pf_rule=point.pf_rule,
            seed=seed + 3,
        )
        config = replace(point.config, seed=seed + 4)
        reports.append(simulate(workload, failures, policy, config))
    result = SweepResult.from_reports(point, reports)
    _result_cache[cache_key] = result
    return result


def run_sweep(
    points: Sequence[SweepPoint],
    seeds: Iterable[int] = (0, 1, 2),
    failure_model: BurstFailureModel | None = None,
) -> list[SweepResult]:
    """Run every cell of a sweep."""
    seeds = tuple(seeds)
    return [run_point(p, seeds, failure_model) for p in points]
