"""Sweep execution with multi-seed averaging.

A :class:`SweepPoint` pins every axis of one experiment cell; the runner
executes it across seeds and averages the metrics, because single-seed
failure placement is noisy at the modest failure counts a short synthetic
trace implies.

Within a sweep the *workload* is held fixed across the swept parameter
(the paper replays one log per figure) by seeding the workload draw from
the base seed only; failure logs for a failure-count axis are *nested* —
lower counts are thinned from the same master log — mirroring the
paper's "artificially varying the number of failures" on one trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.config import SimulationConfig
from repro.core.policies.registry import make_policy
from repro.core.simulator import Simulator
from repro.errors import ExperimentError
from repro.obs.aggregate import CellObs, SweepObsCollector
from repro.obs.log import get_logger
from repro.failures.events import FailureLog
from repro.failures.scaling import rescale_failures
from repro.failures.synthetic import BurstFailureModel, generate_failures
from repro.metrics.report import SimulationReport
from repro.prediction.base import PartitionFailureRule
from repro.workloads.job import Workload
from repro.workloads.models import site_model
from repro.workloads.scaling import fit_to_machine, scale_load
from repro.workloads.synthetic import generate_workload


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid."""

    site: str
    n_jobs: int
    load_scale: float
    n_failures: int
    policy: str
    parameter: float
    pf_rule: PartitionFailureRule = PartitionFailureRule.MAX
    config: SimulationConfig = field(default_factory=SimulationConfig)


@dataclass(frozen=True)
class SweepResult:
    """Seed-averaged metrics for one sweep point."""

    point: SweepPoint
    n_seeds: int
    avg_bounded_slowdown: float
    avg_response: float
    avg_wait: float
    utilized: float
    unused: float
    lost: float
    job_kills: float
    failures_hit_jobs: float

    @classmethod
    def from_reports(cls, point: SweepPoint, reports: Sequence[SimulationReport]) -> "SweepResult":
        if not reports:
            raise ExperimentError("cannot aggregate zero reports")
        n = len(reports)
        rows = []
        for r in reports:
            _check_report_consistency(r)
            rows.append(
                (
                    r.timing.avg_bounded_slowdown,
                    r.timing.avg_response,
                    r.timing.avg_wait,
                    r.capacity.utilized,
                    r.capacity.unused,
                    r.capacity.lost,
                    r.counters.job_kills,
                    r.counters.failures_hit_jobs,
                )
            )
        # Row columns mirror the metric-field declaration order above.
        means = [math.fsum(col) / n for col in zip(*rows)]
        return cls(point, n, *means)


#: Float-error tolerance on capacity fractions (matches the
#: ``CapacitySummary.__post_init__`` bound).
_LOST_EPS = 1e-9


def _check_report_consistency(report: SimulationReport) -> None:
    """Reject reports whose counters contradict their capacity accounting.

    ``lost`` capacity also absorbs fragmentation and scheduling delay, so
    it may be positive without kills; the invertible direction is the
    counter one: a run that killed jobs must report the kills coherently
    (every kill is a failure that hit a job), and a run with zero
    failures hitting jobs cannot have recorded kills.
    """
    counters = report.counters
    if counters.job_kills != counters.failures_hit_jobs:
        raise ExperimentError(
            f"inconsistent report: job_kills={counters.job_kills} != "
            f"failures_hit_jobs={counters.failures_hit_jobs} "
            f"(transient failures kill exactly the job they hit)"
        )
    if report.capacity.lost < -_LOST_EPS:
        raise ExperimentError(
            f"inconsistent report: negative lost capacity "
            f"{report.capacity.lost}"
        )
    if (
        counters.job_kills > 0
        and report.n_failures == 0
    ):
        raise ExperimentError(
            f"inconsistent report: {counters.job_kills} job kills recorded "
            f"against an empty failure log"
        )


# ----------------------------------------------------------------------
# workload / failure-log caches: sweeps share these across cells
# ----------------------------------------------------------------------

_workload_cache: dict[tuple, Workload] = {}
_master_log_cache: dict[tuple, FailureLog] = {}


def workload_cache_key(point: SweepPoint, seed: int) -> tuple:
    """Cache key of the workload one ``(point, seed)`` cell replays.

    Exposed (with :func:`master_log_cache_key`) so the warm-pool arena
    builder in :mod:`repro.experiments.pool` can snapshot exactly the
    cache entries a sweep's cells will look up.
    """
    return (point.site, point.n_jobs, point.load_scale, seed, point.config.dims.as_tuple())


def _workload_for(point: SweepPoint, seed: int) -> Workload:
    key = workload_cache_key(point, seed)
    workload = _workload_cache.get(key)
    if workload is None:
        raw = generate_workload(site_model(point.site), point.n_jobs, seed=seed)
        workload = fit_to_machine(scale_load(raw, point.load_scale), point.config.dims)
        _workload_cache[key] = workload
    return workload


#: Master failure logs are generated at this count and thinned down, so a
#: failure-count axis is nested (monotone by construction).
MASTER_FAILURE_COUNT = 8192


def master_log_cache_key(
    point: SweepPoint, workload: Workload, seed: int, model: BurstFailureModel
) -> tuple:
    """Cache key of the master failure log a cell thins its failures from."""
    horizon = max(workload.span * 1.5, 3600.0)
    return (point.config.dims.as_tuple(), round(horizon, 3), seed, model)


def _failures_for(
    point: SweepPoint, workload: Workload, seed: int, model: BurstFailureModel
) -> FailureLog:
    key = master_log_cache_key(point, workload, seed, model)
    master = _master_log_cache.get(key)
    if master is None:
        horizon = max(workload.span * 1.5, 3600.0)
        master = generate_failures(
            point.config.dims, MASTER_FAILURE_COUNT, horizon, model=model, seed=seed + 1
        )
        _master_log_cache[key] = master
    if point.n_failures > MASTER_FAILURE_COUNT:
        raise ExperimentError(
            f"n_failures {point.n_failures} exceeds master log size "
            f"{MASTER_FAILURE_COUNT}"
        )
    return rescale_failures(master, point.n_failures, seed=seed + 2)


_result_cache: dict[tuple, SweepResult] = {}

logger = get_logger(__name__)


def _build_cell(
    point: SweepPoint, seed: int, model: BurstFailureModel, with_obs: bool
) -> Simulator:
    """Assemble one ``(point, seed)`` cell's simulator.

    ``with_obs`` forces metrics collection (``profile=True``) so sweep
    observability works even when the point's config only asks for
    traces — or for neither; tracing itself stays governed by
    ``point.config.trace``.  Profiling is observational, so the report
    is identical either way.
    """
    workload = _workload_for(point, seed)
    failures = _failures_for(point, workload, seed, model)
    policy = make_policy(
        point.policy,
        failure_log=failures,
        parameter=point.parameter,
        pf_rule=point.pf_rule,
        seed=seed + 3,
    )
    config = replace(point.config, seed=seed + 4)
    if with_obs:
        config = replace(config, profile=True)
    return Simulator(workload, failures, policy, config)


def simulate_cell(
    point: SweepPoint, seed: int, model: BurstFailureModel
) -> SimulationReport:
    """Run one ``(point, seed)`` simulation cell.

    The single code path behind both serial :func:`run_point` and the
    parallel executor's workers — the per-cell inputs (workload draw,
    master failure log) come from the module-level caches above, which
    act as worker-side memoisation under ``multiprocessing`` fan-out.
    """
    return _build_cell(point, seed, model, with_obs=False).run()


def simulate_cell_obs(
    point: SweepPoint, seed: int, model: BurstFailureModel
) -> tuple[SimulationReport, CellObs]:
    """Run one cell and capture its observability payload.

    The payload (metrics snapshot, plus buffered trace records when the
    point's config enables tracing) is picklable, so parallel workers
    ship it back to the parent for deterministic aggregation.
    """
    simulator = _build_cell(point, seed, model, with_obs=True)
    report = simulator.run()
    metrics = simulator.metrics.to_dict() if simulator.metrics is not None else None
    trace_records = (
        simulator.recorder.records if simulator.recorder.enabled else None
    )
    return report, CellObs(metrics=metrics, trace_records=trace_records)


def run_point(
    point: SweepPoint,
    seeds: Iterable[int] = (0, 1, 2),
    failure_model: BurstFailureModel | None = None,
    collector: SweepObsCollector | None = None,
    point_index: int = 0,
) -> SweepResult:
    """Run one sweep cell across ``seeds`` and average.

    Results are memoised on ``(point, seeds, model)`` — different paper
    figures share many cells (e.g. Figs. 4 and 5 plot different metrics
    of the same sweep), so a full benchmark session reuses them.  An
    observability ``collector`` bypasses the memo on read (a cached
    result has no metrics or trace to contribute) and feeds every cell's
    payload keyed by ``(point_index, seed index)``.
    """
    model = failure_model or BurstFailureModel()
    seeds = tuple(seeds)
    cache_key = (point, seeds, model)
    if collector is None:
        cached = _result_cache.get(cache_key)
        if cached is not None:
            return cached
        reports = [simulate_cell(point, seed, model) for seed in seeds]
    else:
        reports = []
        for seed_index, seed in enumerate(seeds):
            report, obs = simulate_cell_obs(point, seed, model)
            collector.add_cell(point_index, seed_index, obs)
            reports.append(report)
    result = SweepResult.from_reports(point, reports)
    _result_cache[cache_key] = result
    return result


def run_sweep(
    points: Sequence[SweepPoint],
    seeds: Iterable[int] = (0, 1, 2),
    failure_model: BurstFailureModel | None = None,
    workers: int | None = None,
    collector: SweepObsCollector | None = None,
    *,
    checkpoint_dir=None,
    retry=None,
    chaos=None,
    resume: bool = True,
    min_cells_per_worker: int | None = None,
    queue_dir=None,
) -> list[SweepResult]:
    """Run every cell of a sweep.

    ``workers`` > 1 fans the ``(point, seed)`` cells out over a process
    pool (see :mod:`repro.experiments.parallel`); results are collected
    in point order and are bitwise-identical to the serial path.  ``None``
    or ``1`` runs in-process, as does any platform without ``fork`` or
    any sweep smaller than the executor's ``min_cells_per_worker``
    cutover (override it here; 0 forces the pool).

    A :class:`~repro.obs.aggregate.SweepObsCollector` receives every
    cell's metrics registry (and trace, when ``point.config.trace`` is
    on) and merges them in deterministic cell order — parallel and
    serial sweeps aggregate to identical metrics.  The collector is
    finalized before this function returns.

    ``checkpoint_dir``/``retry``/``chaos``/``resume`` select the
    resilient execution path (see :func:`run_sweep_outcome`, which also
    returns the quarantine and resilience stats).  With resilience on,
    a result entry is ``None`` only when every seed of that point was
    quarantined as poison.
    """
    return run_sweep_outcome(
        points,
        seeds,
        failure_model,
        workers,
        collector,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        chaos=chaos,
        resume=resume,
        min_cells_per_worker=min_cells_per_worker,
        queue_dir=queue_dir,
    ).results


def run_sweep_outcome(
    points: Sequence[SweepPoint],
    seeds: Iterable[int] = (0, 1, 2),
    failure_model: BurstFailureModel | None = None,
    workers: int | None = None,
    collector: SweepObsCollector | None = None,
    *,
    checkpoint_dir=None,
    retry=None,
    chaos=None,
    resume: bool = True,
    min_cells_per_worker: int | None = None,
    queue_dir=None,
):
    """Run a sweep and return the full
    :class:`~repro.resilience.ResilientSweepOutcome`.

    The resilient path engages when any of ``checkpoint_dir`` (durable
    per-cell checkpoints; a killed sweep resumes bitwise-identically),
    ``retry`` (a :class:`~repro.resilience.RetryPolicy`; worker crashes
    and in-cell exceptions are retried with deterministic backoff, and
    poison cells are quarantined into ``quarantine.json`` instead of
    aborting) or ``chaos`` (deterministic fault injection, tests only)
    is set — with ``workers`` 1 or ``None`` it runs in-process but keeps
    the full checkpoint/retry contract.

    ``queue_dir`` selects the shared-directory multi-host backend
    instead (see :mod:`repro.experiments.queue`): cells are pulled by
    ``bgl-sim sweep-worker`` processes (``workers`` of them spawned
    locally) and merged from their checkpoints — still
    bitwise-identical to serial.  It subsumes ``checkpoint_dir`` (the
    queue directory *is* the checkpoint store) and does not combine
    with ``chaos`` or a ``collector`` (queue cells run in separate
    processes whose observability is not shipped back).
    """
    from repro.experiments.parallel import SweepExecutor
    from repro.resilience import ResilientSweepOutcome

    seeds = tuple(seeds)
    if queue_dir is not None:
        if checkpoint_dir is not None:
            raise ExperimentError(
                "queue_dir subsumes checkpoint_dir (checkpoints live in "
                "the queue directory); pass only queue_dir"
            )
        if chaos is not None and chaos.enabled:
            raise ExperimentError(
                "chaos injection is not supported on the queue backend; "
                "use a worker's kill_after_claims hook instead"
            )
        if collector is not None:
            raise ExperimentError(
                "observability collectors are not supported on the "
                "queue backend (cells run in unattached processes)"
            )
        from repro.experiments.queue import run_queue_sweep

        queue_kwargs = {}
        if retry is not None:
            queue_kwargs["max_attempts"] = retry.max_attempts
        return run_queue_sweep(
            points,
            seeds,
            failure_model,
            queue_dir=queue_dir,
            workers=workers if workers is not None else 2,
            **queue_kwargs,
        )
    resilient = (
        checkpoint_dir is not None
        or retry is not None
        or (chaos is not None and chaos.enabled)
    )
    try:
        if len(points) > 0 and (
            resilient or (workers is not None and workers > 1)
        ):
            executor_kwargs = {}
            if min_cells_per_worker is not None:
                executor_kwargs["min_cells_per_worker"] = min_cells_per_worker
            executor = SweepExecutor(
                workers=workers if workers is not None else (1 if resilient else None),
                checkpoint_dir=checkpoint_dir,
                retry=retry,
                chaos=chaos,
                resume=resume,
                **executor_kwargs,
            )
            return executor.run_outcome(
                points, seeds, failure_model, collector=collector
            )
        results = [
            run_point(p, seeds, failure_model, collector=collector, point_index=i)
            for i, p in enumerate(points)
        ]
        from repro.resilience import SweepRunStats

        return ResilientSweepOutcome(results, (), SweepRunStats(mode="serial"))
    finally:
        if collector is not None:
            collector.finalize()
