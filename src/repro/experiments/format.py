"""Plain-text rendering of sweep and figure results.

Everything prints as aligned monospace tables — the benchmark harness
streams these to the terminal (and ``bench_output.txt``) so a run's
series can be compared against the paper's plots without a plotting
stack.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.sweep import SweepResult


def format_table(
    rows: Sequence[Sequence[object]], headers: Sequence[str]
) -> str:
    """Align ``rows`` under ``headers``; numbers are right-justified."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    out = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        out.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_series(
    label: str, rows: Sequence[tuple[float, SweepResult]], metric: str
) -> str:
    """One figure series as a table with its key metrics."""
    headers = ["x", "slowdown", "response_s", "util", "unused", "lost", "kills"]
    body = [
        [
            x,
            r.avg_bounded_slowdown,
            r.avg_response,
            r.utilized,
            r.unused,
            r.lost,
            r.job_kills,
        ]
        for x, r in rows
    ]
    return f"--- {label} (metric: {metric}) ---\n" + format_table(body, headers)


def format_figure(result) -> str:
    """Full text rendering of a FigureResult."""
    parts = [f"== {result.figure}: {result.title} ==", f"x axis: {result.x_label}"]
    for label, rows in result.series.items():
        parts.append(format_series(label, rows, result.metric))
    return "\n".join(parts)
