"""Regenerators for every quantitative figure of the paper (Figs. 3-10).

Scale mapping
-------------
The paper replays multi-month job logs against a one-year failure trace
and quotes absolute failure *counts* (0..4000).  A synthetic run covers
days, not years, so counts are mapped rate-preservingly:

    ``n_sim = ceil(n_paper * horizon_days / 365)``

where the horizon is the failure-injection window of the simulated
trace.  The *rates* (failures per machine-day) therefore match the
paper's, which is what its phenomena depend on; see EXPERIMENTS.md.

Knobs
-----
Figure fidelity scales with ``REPRO_FIG_JOBS`` (jobs per run, default
500) and ``REPRO_FIG_SEEDS`` (seeds averaged per point, default 2) —
environment variables so the pytest-benchmark suite stays
argument-free.  ``REPRO_FIG_WORKERS`` (default: all cores but one)
parallelises the sweep cells; every ``figN`` function also takes an
explicit ``workers`` argument.  Parallel results are bitwise-identical
to serial ones (see :mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.config import SimulationConfig
from repro.errors import ExperimentError
from repro.experiments.parallel import default_workers
from repro.experiments.sweep import SweepPoint, SweepResult, run_sweep_outcome
from repro.resilience import RetryPolicy, incomplete_points
from repro.workloads.models import site_model
from repro.workloads.scaling import fit_to_machine, scale_load
from repro.workloads.synthetic import generate_workload

#: Paper failure-count axis for the failure-rate studies (Figs. 3-5).
PAPER_FAILURE_AXIS = tuple(range(0, 4001, 500))
#: Paper prediction-parameter axis (confidence / accuracy, Figs. 6-10).
PAPER_PARAMETER_AXIS = tuple(round(0.1 * i, 1) for i in range(11))
#: Paper per-site failure counts for the parameter sweeps (§6.2).
PAPER_SITE_FAILURES = {"nasa": 4000, "sdsc": 4000, "llnl": 1000}

_SECONDS_PER_YEAR = 365.0 * 86_400.0


def default_n_jobs() -> int:
    """Jobs per simulated run (env-tunable)."""
    return int(os.environ.get("REPRO_FIG_JOBS", "500"))


def default_seeds() -> tuple[int, ...]:
    """Seeds averaged per sweep point (env-tunable)."""
    return tuple(range(int(os.environ.get("REPRO_FIG_SEEDS", "2"))))


def _horizon_s(site: str, n_jobs: int, load_scale: float, seed: int = 0) -> float:
    """Failure-injection horizon of a run (must match sweep internals)."""
    workload = fit_to_machine(
        scale_load(generate_workload(site_model(site), n_jobs, seed=seed), load_scale),
        SimulationConfig().dims,
    )
    return max(workload.span * 1.5, 3600.0)


def paper_failures_to_sim(paper_count: int, horizon_s: float) -> int:
    """Rate-preserving mapping from a paper failure count to this run."""
    if paper_count < 0:
        raise ExperimentError("paper failure count must be >= 0")
    return math.ceil(paper_count * horizon_s / _SECONDS_PER_YEAR)


@dataclass
class FigureResult:
    """Output of one figure regeneration.

    ``series`` maps a legend label to ``(x, result)`` pairs along the
    figure's x axis.
    """

    figure: str
    title: str
    x_label: str
    metric: str
    series: dict[str, list[tuple[float, SweepResult]]] = field(default_factory=dict)

    def metric_values(self, label: str) -> list[tuple[float, float]]:
        """(x, metric) pairs for one series."""
        getter = {
            "bounded_slowdown": lambda r: r.avg_bounded_slowdown,
            "response": lambda r: r.avg_response,
            "utilized": lambda r: r.utilized,
        }[self.metric]
        return [(x, getter(r)) for x, r in self.series[label]]


# ----------------------------------------------------------------------
# shared sweep shapes
# ----------------------------------------------------------------------

def _assemble_series(
    result: FigureResult,
    series_points: list[tuple[str, list[tuple[float, SweepPoint]]]],
    seeds: tuple[int, ...],
    workers: int | None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Run every series' points as one flat sweep and slice them back.

    Flattening across series before fanning out maximises parallelism —
    a figure's whole grid saturates the pool instead of one series at a
    time.  With ``checkpoint_dir`` the flat sweep checkpoints each cell
    (content-addressed, so a re-run resumes exactly); a figure whose
    sweep quarantined cells is an error — every point of a figure is
    required — but the completed cells are already durable, so the
    retry costs only the quarantined cells.
    """
    flat = [p for _, rows in series_points for _, p in rows]
    workers = workers if workers is not None else default_workers()
    outcome = run_sweep_outcome(
        flat,
        seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )
    short = incomplete_points(outcome, seeds)
    if short:
        raise ExperimentError(
            f"figure {result.figure} sweep quarantined cells of "
            f"{len(short)} points (indices {short[:8]}); completed cells "
            f"are checkpointed{' in ' + str(checkpoint_dir) if checkpoint_dir else ''} "
            f"— inspect quarantine.json and rerun"
        )
    sweep_results = outcome.results
    cursor = 0
    for label, rows in series_points:
        result.series[label] = [
            (x, sweep_results[cursor + k]) for k, (x, _) in enumerate(rows)
        ]
        cursor += len(rows)
    return result


def _failure_rate_sweep(
    figure: str,
    title: str,
    series_spec: Sequence[tuple[str, float, float]],  # (label, a, c)
    metric: str,
    site: str = "sdsc",
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    policy: str = "balancing",
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    n_jobs = n_jobs or default_n_jobs()
    seeds = tuple(seeds or default_seeds())
    result = FigureResult(figure, title, "paper failure count", metric)
    series_points: list[tuple[str, list[tuple[float, SweepPoint]]]] = []
    for label, a, c in series_spec:
        horizon = _horizon_s(site, n_jobs, c, seed=seeds[0])
        rows = [
            (
                float(paper_count),
                SweepPoint(
                    site=site,
                    n_jobs=n_jobs,
                    load_scale=c,
                    n_failures=paper_failures_to_sim(paper_count, horizon),
                    policy=policy,
                    parameter=a,
                ),
            )
            for paper_count in PAPER_FAILURE_AXIS
        ]
        series_points.append((label, rows))
    return _assemble_series(
        result, series_points, seeds, workers,
        checkpoint_dir=checkpoint_dir, retry=retry, resume=resume,
        queue_dir=queue_dir,
    )


def _parameter_sweep(
    figure: str,
    title: str,
    policy: str,
    metric: str,
    sites: Sequence[str],
    loads: Sequence[float],
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    n_jobs = n_jobs or default_n_jobs()
    seeds = tuple(seeds or default_seeds())
    x_label = "confidence" if policy == "balancing" else "accuracy"
    result = FigureResult(figure, title, x_label, metric)
    series_points: list[tuple[str, list[tuple[float, SweepPoint]]]] = []
    for site in sites:
        for c in loads:
            horizon = _horizon_s(site, n_jobs, c, seed=seeds[0])
            n_failures = paper_failures_to_sim(PAPER_SITE_FAILURES[site], horizon)
            rows = [
                (
                    a,
                    SweepPoint(
                        site=site,
                        n_jobs=n_jobs,
                        load_scale=c,
                        n_failures=n_failures,
                        policy=policy,
                        parameter=a,
                    ),
                )
                for a in PAPER_PARAMETER_AXIS
            ]
            series_points.append((f"{site} c={c}", rows))
    return _assemble_series(
        result, series_points, seeds, workers,
        checkpoint_dir=checkpoint_dir, retry=retry, resume=resume,
        queue_dir=queue_dir,
    )


# ----------------------------------------------------------------------
# Figures 3-10
# ----------------------------------------------------------------------

def fig3(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 3: avg bounded slowdown vs failure rate, SDSC, balancing,
    a in {0 (no prediction), 0.1, 0.9}."""
    return _failure_rate_sweep(
        "fig3",
        "Slowdown vs failure rate, with/without prediction (SDSC)",
        [("a=0.0", 0.0, 1.0), ("a=0.1", 0.1, 1.0), ("a=0.9", 0.9, 1.0)],
        "bounded_slowdown",
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


def fig4(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 4: avg bounded slowdown vs failure rate for loads c=1.0/1.2
    (SDSC, balancing; the paper does not state the confidence — we use
    a=0.1, its headline operating point)."""
    return _failure_rate_sweep(
        "fig4",
        "Slowdown vs failure rate under load scaling (SDSC)",
        [("c=1.0", 0.1, 1.0), ("c=1.2", 0.1, 1.2)],
        "bounded_slowdown",
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


def fig5(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 5: utilization vs failure rate, SDSC, balancing (a=0.1),
    panels c=1.0 and c=1.2."""
    return _failure_rate_sweep(
        "fig5",
        "Utilization vs failure rate (SDSC)",
        [("c=1.0", 0.1, 1.0), ("c=1.2", 0.1, 1.2)],
        "utilized",
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


def fig6(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 6: avg bounded slowdown vs confidence, balancing, panels
    SDSC/NASA/LLNL, loads c=1.0 and c=1.2."""
    return _parameter_sweep(
        "fig6",
        "Slowdown vs prediction confidence (balancing)",
        "balancing",
        "bounded_slowdown",
        sites=("sdsc", "nasa", "llnl"),
        loads=(1.0, 1.2),
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


def fig7(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 7: utilization vs confidence, SDSC, balancing, c=1.0/1.2."""
    return _parameter_sweep(
        "fig7",
        "Utilization vs confidence (SDSC, balancing)",
        "balancing",
        "utilized",
        sites=("sdsc",),
        loads=(1.0, 1.2),
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


def fig8(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 8: utilization vs confidence, NASA, balancing, c=1.0/1.2."""
    return _parameter_sweep(
        "fig8",
        "Utilization vs confidence (NASA, balancing)",
        "balancing",
        "utilized",
        sites=("nasa",),
        loads=(1.0, 1.2),
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


def fig9(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 9: avg bounded slowdown vs accuracy, tie-breaking, panels
    SDSC/NASA/LLNL, loads c=1.0 and c=1.2."""
    return _parameter_sweep(
        "fig9",
        "Slowdown vs prediction accuracy (tie-breaking)",
        "tiebreak",
        "bounded_slowdown",
        sites=("sdsc", "nasa", "llnl"),
        loads=(1.0, 1.2),
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


def fig10(
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Fig. 10: utilization vs accuracy, LLNL, tie-breaking, c=1.0/1.2."""
    return _parameter_sweep(
        "fig10",
        "Utilization vs accuracy (LLNL, tie-breaking)",
        "tiebreak",
        "utilized",
        sites=("llnl",),
        loads=(1.0, 1.2),
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )


_FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}


def figure_registry() -> tuple[str, ...]:
    """Names of all regenerable figures."""
    return tuple(_FIGURES)


def run_figure(
    name: str,
    n_jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    retry: RetryPolicy | None = None,
    resume: bool = True,
    queue_dir: str | None = None,
) -> FigureResult:
    """Regenerate one figure by name (``fig3`` .. ``fig10``)."""
    try:
        fn = _FIGURES[name.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {name!r}; available: {', '.join(_FIGURES)}"
        ) from None
    return fn(
        n_jobs=n_jobs,
        seeds=seeds,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        resume=resume,
        queue_dir=queue_dir,
    )
