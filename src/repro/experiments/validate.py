"""Qualitative shape validation of regenerated figures.

EXPERIMENTS.md states, per figure, which *shapes* of the paper's curves
this reproduction targets (orderings, knees, conservation laws).  This
module encodes those statements as executable checks over a
:class:`~repro.experiments.figures.FigureResult`, so a figure
regeneration can be machine-verified instead of eyeballed.  Checks come
in two severities:

* ``invariant`` — must always hold (conservation, axis coverage,
  baseline identities); a violation is a bug.
* ``expectation`` — the paper's qualitative claim; can fail on an
  unlucky seed at small scale, so validators report rather than raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult


@dataclass(frozen=True, slots=True)
class CheckOutcome:
    """Result of one shape check."""

    name: str
    severity: str  # "invariant" | "expectation"
    passed: bool
    detail: str


@dataclass
class ValidationReport:
    """All check outcomes for one figure."""

    figure: str
    outcomes: list[CheckOutcome] = field(default_factory=list)

    def add(self, name: str, severity: str, passed: bool, detail: str = "") -> None:
        self.outcomes.append(CheckOutcome(name, severity, passed, detail))

    @property
    def invariants_ok(self) -> bool:
        return all(o.passed for o in self.outcomes if o.severity == "invariant")

    @property
    def expectations_met(self) -> int:
        return sum(1 for o in self.outcomes if o.severity == "expectation" and o.passed)

    @property
    def expectations_total(self) -> int:
        return sum(1 for o in self.outcomes if o.severity == "expectation")

    def summary(self) -> str:
        lines = [f"validation[{self.figure}]: invariants "
                 f"{'OK' if self.invariants_ok else 'VIOLATED'}, "
                 f"expectations {self.expectations_met}/{self.expectations_total}"]
        for o in self.outcomes:
            mark = "ok " if o.passed else ("BUG" if o.severity == "invariant" else "mis")
            lines.append(f"  [{mark}] {o.severity:<11} {o.name}"
                         + (f" — {o.detail}" if o.detail else ""))
        return "\n".join(lines)


def _series_rows(result: FigureResult, label: str):
    try:
        return result.series[label]
    except KeyError:
        raise ExperimentError(
            f"{result.figure} has no series {label!r}; has {list(result.series)}"
        ) from None


def _check_common(result: FigureResult, report: ValidationReport) -> None:
    report.add(
        "has-series", "invariant", bool(result.series),
        f"{len(result.series)} series",
    )
    for label, rows in result.series.items():
        xs = [x for x, _ in rows]
        report.add(
            f"x-axis-sorted[{label}]", "invariant", xs == sorted(xs),
        )
        conserved = all(
            abs(r.utilized + r.unused + r.lost - 1.0) < 1e-6 for _, r in rows
        )
        report.add(f"capacity-conservation[{label}]", "invariant", conserved)
        nonneg = all(
            r.utilized >= 0 and r.unused >= 0 and r.job_kills >= 0 for _, r in rows
        )
        report.add(f"non-negative-metrics[{label}]", "invariant", nonneg)


def _failure_axis_checks(result: FigureResult, report: ValidationReport) -> None:
    for label, rows in result.series.items():
        first, last = rows[0][1], rows[-1][1]
        report.add(
            f"zero-failures-zero-kills[{label}]", "invariant",
            rows[0][0] != 0.0 or first.job_kills == 0.0,
        )
        report.add(
            f"failures-degrade[{label}]", "expectation",
            last.avg_bounded_slowdown > first.avg_bounded_slowdown,
            f"{first.avg_bounded_slowdown:.1f} -> {last.avg_bounded_slowdown:.1f}",
        )
        report.add(
            f"failures-lose-capacity[{label}]", "expectation",
            last.lost > first.lost,
            f"{first.lost:.3f} -> {last.lost:.3f}",
        )


def _prediction_axis_checks(result: FigureResult, report: ValidationReport) -> None:
    for label, rows in result.series.items():
        kills = [r.job_kills for _, r in rows]
        report.add(
            f"prediction-reduces-kills[{label}]", "expectation",
            min(kills[1:], default=kills[0]) <= kills[0],
            f"a=0: {kills[0]:.1f}, best: {min(kills):.1f}",
        )
        early = kills[1] if len(kills) > 1 else kills[0]
        late = kills[-1]
        gain_early = kills[0] - early
        gain_late = kills[0] - late
        report.add(
            f"diminishing-returns[{label}]", "expectation",
            gain_early >= 0.5 * gain_late or gain_late <= 0,
            f"gain@0.1={gain_early:.1f} gain@1.0={gain_late:.1f}",
        )


def validate_figure(result: FigureResult) -> ValidationReport:
    """Run the appropriate shape checks for any regenerated figure."""
    report = ValidationReport(result.figure)
    _check_common(result, report)
    if result.x_label == "paper failure count":
        _failure_axis_checks(result, report)
    elif result.x_label in ("confidence", "accuracy"):
        _prediction_axis_checks(result, report)
    else:
        raise ExperimentError(f"unknown figure axis {result.x_label!r}")
    return report
