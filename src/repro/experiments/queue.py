"""Directory-backed multi-host work queue for sweep cells.

The warm pool (:mod:`repro.experiments.pool`) scales a sweep across the
cores of one machine; this module scales it across *machines* that share
nothing but a directory (NFS mount, fuse-mounted object store, plain
disk for same-host tests).  The design leans entirely on properties the
resilience layer already guarantees:

* **Content-addressed tasks** — every ``(point, seed)`` cell is
  enqueued under its :func:`~repro.resilience.cell_key` SHA-256, the
  same key its checkpoint will use, so "is this cell done?" is a file
  existence probe and duplicate execution is *harmless by construction*:
  a second worker computing the same cell atomically writes the same
  bytes to the same checkpoint path.
* **Claim by atomic rename** — a worker claims a task by renaming
  ``tasks/<key>.json`` to ``claims/<key>.json``.  ``os.rename`` is
  atomic on POSIX, so exactly one racer wins; the losers get
  ``FileNotFoundError`` and move on.
* **Deterministic lease expiry** — after winning, the worker rewrites
  the claim in place with a lease (worker id, claim time, deadline).
  Any observer reclaims a claim past its recorded deadline; a claim
  whose worker died *between rename and lease write* falls back to the
  file's mtime plus the queue's lease.  Reclaim uses ``unlink`` as the
  arbiter — whoever's unlink succeeds re-enqueues (attempt + 1) or
  dead-letters; every other racer gets ``FileNotFoundError``.
* **Checkpoints as results** — a completed cell is an ordinary
  :class:`~repro.resilience.CellStore` checkpoint under the queue
  directory, so the driver's merge is exactly the resume path: verified
  reads, bitwise-identical aggregation against the *original* in-memory
  points.

Layout::

    <queue-dir>/tasks/<key>.json    runnable cells (rename source)
    <queue-dir>/claims/<key>.json   leased cells (rename target)
    <queue-dir>/dead/<key>.json     cells that exhausted their attempts
    <queue-dir>/cells/<key>.json    completed cells (ordinary CellStore)

Workers are started with ``bgl-sim sweep-worker --queue-dir <dir>`` (as
many processes, on as many hosts, as the directory is shared with);
``bgl-sim sweep --backend queue`` runs the driver, which can also spawn
same-host workers itself.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ExperimentError, ResilienceError
from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    _result_cache,
    simulate_cell,
)
from repro.failures.synthetic import BurstFailureModel
from repro.obs.log import get_logger
from repro.obs.metrics import count_active
from repro.resilience import (
    CellStore,
    QuarantineEntry,
    ResilientSweepOutcome,
    SweepRunStats,
    cell_key,
)
from repro.resilience.store import (
    describe_model,
    describe_point,
    model_from_dict,
    point_from_dict,
)

logger = get_logger(__name__)

#: Default seconds a claim may go without completing before any
#: observer may reclaim it.  Cells are seconds-scale; a minute of grace
#: tolerates slow hosts without stalling recovery for long.
DEFAULT_LEASE_S = 60.0

#: Attempts (initial + re-enqueues) before a cell is dead-lettered.
DEFAULT_MAX_ATTEMPTS = 3

_TMP_PREFIX = ".tmp-"


@dataclass(frozen=True)
class QueueTask:
    """One claimed (or inspectable) cell of queued work."""

    key: str
    point_index: int
    seed_index: int
    seed: int
    attempt: int
    record: dict[str, Any]

    def point(self) -> SweepPoint:
        return point_from_dict(self.record["point"])

    def model(self) -> BurstFailureModel:
        return model_from_dict(self.record["model"])


def _write_record(directory: Path, key: str, record: dict[str, Any]) -> Path:
    """Atomically write one task/claim/dead record."""
    path = directory / f"{key}.json"
    tmp = directory / f"{_TMP_PREFIX}{key}-{os.getpid()}.json"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def _read_record(path: Path) -> dict[str, Any] | None:
    """Read one record; ``None`` when it vanished or is unparseable yet.

    A reader can race a writer's ``os.replace`` (seeing the old complete
    file) but never sees a partial file; a genuinely garbled record is
    surfaced to the caller as ``None`` and handled like a lost race.
    """
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None


class WorkQueue:
    """One shared-directory work queue of sweep cells."""

    def __init__(
        self,
        root: str | Path,
        *,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        worker_id: str | None = None,
    ) -> None:
        if lease_s <= 0:
            raise ExperimentError("lease_s must be positive")
        if max_attempts < 1:
            raise ExperimentError("max_attempts must be >= 1")
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.dead_dir = self.root / "dead"
        try:
            for directory in (self.tasks_dir, self.claims_dir, self.dead_dir):
                directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ResilienceError(
                f"cannot create queue directory {self.root}: {exc}"
            ) from exc
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.store = CellStore(self.root)

    # ------------------------------------------------------------------
    # enqueue
    # ------------------------------------------------------------------
    def enqueue(
        self,
        points: Sequence[SweepPoint],
        seeds: Sequence[int],
        model: BurstFailureModel,
    ) -> list[str]:
        """Enqueue every cell of a grid that is not already accounted for.

        Idempotent: cells with an existing checkpoint, task, claim or
        dead-letter are skipped, so re-running a driver against a
        half-finished queue directory resumes instead of duplicating.
        Returns the keys actually enqueued.
        """
        enqueued: list[str] = []
        for si, seed in enumerate(seeds):
            for i, point in enumerate(points):
                key = cell_key(point, seed, model)
                if (
                    self.store.has(key)
                    or (self.tasks_dir / f"{key}.json").exists()
                    or (self.claims_dir / f"{key}.json").exists()
                    or (self.dead_dir / f"{key}.json").exists()
                ):
                    continue
                _write_record(
                    self.tasks_dir,
                    key,
                    {
                        "key": key,
                        "point_index": i,
                        "seed_index": si,
                        "seed": seed,
                        "attempt": 1,
                        "point": describe_point(point),
                        "model": describe_model(model),
                    },
                )
                enqueued.append(key)
                count_active("queue.task.enqueued")
        return enqueued

    # ------------------------------------------------------------------
    # claim / complete / fail
    # ------------------------------------------------------------------
    def claim(self) -> QueueTask | None:
        """Claim one runnable task, or ``None`` when none is claimable.

        Tasks are attempted in sorted key order (deterministic scan);
        the atomic rename arbitrates racers, and the winner immediately
        rewrites the claim with its lease so expiry is observable by
        key content, not clock guesswork.
        """
        try:
            candidates = sorted(
                p for p in self.tasks_dir.iterdir()
                if p.suffix == ".json" and not p.name.startswith(_TMP_PREFIX)
            )
        except OSError:
            return None
        for path in candidates:
            target = self.claims_dir / path.name
            try:
                os.rename(path, target)
            except FileNotFoundError:
                # Another worker renamed it first.
                count_active("queue.claim.lost")
                continue
            except OSError:
                continue
            record = _read_record(target)
            if record is None:
                # Garbled task file: nobody can run it; dead-letter the
                # raw claim so the driver surfaces it.
                target.rename(self.dead_dir / path.name)
                count_active("queue.task.garbled")
                continue
            now = time.time()
            record["lease"] = {
                "worker": self.worker_id,
                "claimed_at": now,
                "deadline": now + self.lease_s,
            }
            _write_record(self.claims_dir, record["key"], record)
            count_active("queue.claim.won")
            return QueueTask(
                key=record["key"],
                point_index=record["point_index"],
                seed_index=record["seed_index"],
                seed=record["seed"],
                attempt=record["attempt"],
                record=record,
            )
        return None

    def complete(self, task: QueueTask, report) -> None:
        """Persist the cell's checkpoint, then release the claim.

        Checkpoint-then-unlink ordering means a crash between the two
        leaves a claim whose work is done; reclaim notices the existing
        checkpoint and simply drops the claim.
        """
        self.store.put(
            task.key, report, point_index=task.point_index, seed=task.seed
        )
        (self.claims_dir / f"{task.key}.json").unlink(missing_ok=True)
        count_active("queue.claim.completed")

    def release_duplicate(self, task: QueueTask) -> None:
        """Drop a claim whose cell some other worker already completed."""
        (self.claims_dir / f"{task.key}.json").unlink(missing_ok=True)
        count_active("queue.claim.duplicate")

    def fail(self, task: QueueTask, exc: BaseException) -> None:
        """Record a failed attempt: re-enqueue or dead-letter the cell."""
        (self.claims_dir / f"{task.key}.json").unlink(missing_ok=True)
        record = dict(task.record)
        record.pop("lease", None)
        record["error_type"] = type(exc).__name__
        record["error"] = str(exc)
        if task.attempt >= self.max_attempts:
            _write_record(self.dead_dir, task.key, record)
            count_active("queue.task.dead")
            logger.warning(
                "queue cell %s dead-lettered after %d attempts: %s: %s",
                task.key[:12],
                task.attempt,
                type(exc).__name__,
                exc,
            )
        else:
            record["attempt"] = task.attempt + 1
            _write_record(self.tasks_dir, task.key, record)
            count_active("queue.claim.failed")

    # ------------------------------------------------------------------
    # lease expiry / reclaim
    # ------------------------------------------------------------------
    def _claim_expiry(self, path: Path, record: dict[str, Any] | None) -> float:
        """Deterministic expiry instant of one claim.

        The recorded deadline governs; a claim whose worker died between
        the rename and the lease write has no deadline, so the rename's
        mtime plus the queue lease bounds it instead.
        """
        if record is not None and isinstance(record.get("lease"), dict):
            deadline = record["lease"].get("deadline")
            if isinstance(deadline, (int, float)):
                return float(deadline)
        try:
            return path.stat().st_mtime + self.lease_s
        except OSError:
            return float("-inf")  # vanished: treat as expired, unlink loses

    def reclaim_expired(self, now: float | None = None) -> int:
        """Re-enqueue (or dead-letter) every claim past its lease.

        ``unlink`` is the arbiter: of any number of concurrent
        reclaimers (and the original worker's own completion), exactly
        one unlink succeeds and only that caller re-enqueues — so a cell
        can never fork into two live tasks.  Returns how many claims
        were reclaimed.
        """
        now = time.time() if now is None else now
        reclaimed = 0
        try:
            claims = sorted(
                p for p in self.claims_dir.iterdir()
                if p.suffix == ".json" and not p.name.startswith(_TMP_PREFIX)
            )
        except OSError:
            return 0
        for path in claims:
            record = _read_record(path)
            if self._claim_expiry(path, record) > now:
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                continue  # completer or rival reclaimer won
            except OSError:
                continue
            key = path.stem
            if self.store.has(key):
                # The worker finished but died before dropping its claim.
                count_active("queue.claim.orphan_completed")
                reclaimed += 1
                continue
            if record is None:
                # Expired claim with an unreadable record: nothing can
                # rebuild the cell description, so surface it.
                _write_record(
                    self.dead_dir,
                    key,
                    {"key": key, "error_type": "GarbledClaim",
                     "error": "claim record unreadable at reclaim"},
                )
                count_active("queue.task.garbled")
                reclaimed += 1
                continue
            attempt = int(record.get("attempt", 1))
            lease = record.pop("lease", None) or {}
            record["error_type"] = "LeaseExpired"
            record["error"] = (
                f"worker {lease.get('worker', 'unknown')} lease expired "
                f"mid-cell"
            )
            if attempt >= self.max_attempts:
                _write_record(self.dead_dir, key, record)
                count_active("queue.task.dead")
            else:
                record["attempt"] = attempt + 1
                _write_record(self.tasks_dir, key, record)
            count_active("queue.claim.reclaimed")
            reclaimed += 1
        if reclaimed:
            logger.info("reclaimed %d expired queue claims", reclaimed)
        return reclaimed

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _count(self, directory: Path) -> int:
        try:
            return sum(
                1 for p in directory.iterdir()
                if p.suffix == ".json" and not p.name.startswith(_TMP_PREFIX)
            )
        except OSError:
            return 0

    def counts(self) -> dict[str, int]:
        return {
            "tasks": self._count(self.tasks_dir),
            "claims": self._count(self.claims_dir),
            "dead": self._count(self.dead_dir),
            "cells": self._count(self.store.cells_dir),
        }

    def dead_records(self) -> list[dict[str, Any]]:
        records = []
        for path in sorted(self.dead_dir.iterdir()):
            if path.suffix != ".json" or path.name.startswith(_TMP_PREFIX):
                continue
            record = _read_record(path)
            if record is not None:
                records.append(record)
        return records


# ----------------------------------------------------------------------
# worker loop
# ----------------------------------------------------------------------

def run_worker(
    queue_dir: str | Path,
    *,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    max_cells: int | None = None,
    idle_exit_s: float | None = None,
    poll_s: float = 0.05,
    kill_after_claims: int | None = None,
    worker_id: str | None = None,
) -> int:
    """Pull-and-run loop of one queue worker; returns cells completed.

    The worker exits when the queue is drained (no tasks *and* no
    claims), after ``max_cells`` completions, or after ``idle_exit_s``
    seconds without claimable work.  ``kill_after_claims=N`` is the
    chaos hook: the worker processes ``N`` claims normally, then dies
    via ``os._exit`` *between claiming and computing* its next cell —
    the deterministic "crash mid-cell" the lease-expiry tests rehearse.
    """
    from repro.resilience.chaos import KILL_EXIT_CODE

    # Spawned workers must thin failures from master logs of the same
    # length as the driver that enqueued (and will serially verify) the
    # cells; the driver exports its count when it spawns us.
    master_count = os.environ.get("REPRO_MASTER_FAILURE_COUNT")
    if master_count is not None:
        sweep_mod.MASTER_FAILURE_COUNT = int(master_count)

    queue = WorkQueue(
        queue_dir,
        lease_s=lease_s,
        max_attempts=max_attempts,
        worker_id=worker_id,
    )
    completed = 0
    claims_made = 0
    idle_since: float | None = None
    logger.info(
        "sweep worker %s polling %s (lease %.1fs)",
        queue.worker_id,
        queue.root,
        lease_s,
    )
    while True:
        task = queue.claim()
        if task is None:
            queue.reclaim_expired()
            task = queue.claim()
        if task is None:
            counts = queue.counts()
            if counts["tasks"] == 0 and counts["claims"] == 0:
                break
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif idle_exit_s is not None and now - idle_since >= idle_exit_s:
                logger.info(
                    "worker %s idle for %.1fs; exiting", queue.worker_id,
                    idle_exit_s,
                )
                break
            time.sleep(poll_s)
            continue
        idle_since = None
        claims_made += 1
        if kill_after_claims is not None and claims_made > kill_after_claims:
            os._exit(KILL_EXIT_CODE)
        if queue.store.has(task.key):
            queue.release_duplicate(task)
            continue
        try:
            report = simulate_cell(task.point(), task.seed, task.model())
        except BaseException as exc:
            queue.fail(task, exc)
            if not isinstance(exc, Exception):  # KeyboardInterrupt etc.
                raise
            continue
        queue.complete(task, report)
        completed += 1
        if max_cells is not None and completed >= max_cells:
            break
    logger.info(
        "sweep worker %s done: %d cells completed", queue.worker_id, completed
    )
    return completed


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def spawn_worker_process(
    queue_dir: str | Path,
    *,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    idle_exit_s: float = 2.0,
    kill_after_claims: int | None = None,
) -> subprocess.Popen:
    """Start one same-host ``sweep-worker`` subprocess via the CLI.

    This is deliberately the same entry a multi-host deployment uses
    (``bgl-sim sweep-worker --queue-dir ...``), so the driver's spawned
    workers and remotely started ones are indistinguishable.
    """
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "sweep-worker",
        "--queue-dir",
        str(queue_dir),
        "--lease-s",
        str(lease_s),
        "--max-attempts",
        str(max_attempts),
        "--idle-exit-s",
        str(idle_exit_s),
    ]
    if kill_after_claims is not None:
        cmd += ["--kill-after-claims", str(kill_after_claims)]
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_MASTER_FAILURE_COUNT"] = str(sweep_mod.MASTER_FAILURE_COUNT)
    return subprocess.Popen(cmd, env=env)


def run_queue_sweep(
    points: Sequence[SweepPoint],
    seeds: Sequence[int],
    failure_model: BurstFailureModel | None = None,
    *,
    queue_dir: str | Path,
    workers: int = 2,
    lease_s: float = DEFAULT_LEASE_S,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    spawn_workers: bool = True,
    max_respawns: int = 3,
    poll_s: float = 0.05,
    timeout_s: float | None = None,
) -> ResilientSweepOutcome:
    """Drive one sweep through a shared-directory work queue.

    Enqueues every not-yet-checkpointed cell, optionally spawns
    ``workers`` same-host worker subprocesses (set
    ``spawn_workers=False`` when workers run elsewhere against the same
    directory), then supervises: reclaiming expired leases, respawning
    a fully-dead local worker fleet (up to ``max_respawns`` times, each
    counted as a pool rebuild), and finally merging checkpoints into
    :class:`~repro.resilience.ResilientSweepOutcome` **against the
    original in-memory points** — the same verified-read resume path a
    single-host resilient sweep uses, so results are bitwise-identical
    to serial.  Dead-lettered cells surface as quarantine entries,
    mirroring the poison-cell contract.
    """
    model = failure_model or BurstFailureModel()
    seeds = tuple(seeds)
    if not seeds:
        raise ExperimentError("cannot run a sweep across zero seeds")
    queue = WorkQueue(
        queue_dir, lease_s=lease_s, max_attempts=max_attempts
    )
    stats = SweepRunStats(mode="queue", workers_used=workers)
    keys = {
        (i, si): cell_key(points[i], seed, model)
        for si, seed in enumerate(seeds)
        for i in range(len(points))
    }
    enqueued = queue.enqueue(points, seeds, model)
    already_done = sum(1 for key in keys.values() if queue.store.has(key))
    logger.info(
        "queue sweep: %d cells (%d enqueued, %d already checkpointed) "
        "under %s with %d workers",
        len(keys),
        len(enqueued),
        already_done,
        queue.root,
        workers,
    )

    procs: list[subprocess.Popen] = []
    respawns = 0
    started = time.monotonic()
    initial = queue.counts()
    # Workers are needed for newly enqueued cells AND for work already
    # outstanding in the directory — a resumed run may enqueue nothing
    # yet still face leftover tasks or stale claims from a killed fleet.
    outstanding = bool(enqueued) or initial["tasks"] > 0 or initial["claims"] > 0
    try:
        if spawn_workers and outstanding:
            procs = [
                spawn_worker_process(
                    queue_dir, lease_s=lease_s, max_attempts=max_attempts
                )
                for _ in range(workers)
            ]
        while True:
            counts = queue.counts()
            done = all(
                queue.store.has(key) or (queue.dead_dir / f"{key}.json").exists()
                for key in keys.values()
            )
            if done and counts["claims"] == 0:
                break
            queue.reclaim_expired()
            if spawn_workers and procs:
                alive = [p for p in procs if p.poll() is None]
                if not alive and (counts["tasks"] > 0 or counts["claims"] > 0):
                    # The whole local fleet died with work outstanding.
                    # Expired claims were just reclaimed; claims still
                    # inside their lease will be on the next pass.
                    if respawns >= max_respawns:
                        raise ExperimentError(
                            f"queue sweep workers died {respawns + 1} times "
                            f"with work outstanding "
                            f"({counts['tasks']} tasks, {counts['claims']} "
                            f"claims); inspect {queue.root}"
                        )
                    respawns += 1
                    stats.pool_rebuilds += 1
                    count_active("queue.worker.respawn")
                    logger.warning(
                        "all %d queue workers exited with work outstanding; "
                        "respawning fleet (%d/%d)",
                        workers,
                        respawns,
                        max_respawns,
                    )
                    procs = [
                        spawn_worker_process(
                            queue_dir, lease_s=lease_s,
                            max_attempts=max_attempts,
                        )
                        for _ in range(workers)
                    ]
            if timeout_s is not None and time.monotonic() - started > timeout_s:
                raise ExperimentError(
                    f"queue sweep did not drain within {timeout_s}s "
                    f"({queue.counts()})"
                )
            time.sleep(poll_s)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()

    # ------------------------------------------------------------------
    # merge: the ordinary verified-checkpoint resume path
    # ------------------------------------------------------------------
    reports: dict[tuple[int, int], Any] = {}
    for cell_id, key in keys.items():
        restored = queue.store.get(key)
        if restored is not None:
            reports[cell_id] = restored
    stats.checkpoint_hits = queue.store.hits
    stats.checkpoint_misses = queue.store.misses
    stats.checkpoint_corrupt = queue.store.corrupt
    stats.cells_computed = len(reports) - already_done

    dead_by_key = {
        record.get("key"): record for record in queue.dead_records()
    }
    quarantined: list[QuarantineEntry] = []
    for cell_id, key in sorted(keys.items()):
        if cell_id in reports or key not in dead_by_key:
            continue
        record = dead_by_key[key]
        quarantined.append(
            QuarantineEntry(
                point_index=record.get("point_index", cell_id[0]),
                seed_index=record.get("seed_index", cell_id[1]),
                seed=record.get("seed", seeds[cell_id[1]]),
                attempts=record.get("attempt", max_attempts),
                error_type=record.get("error_type", "QueueDeadLetter"),
                error=record.get("error", "cell dead-lettered by queue"),
                key=key,
            )
        )
    stats.quarantined = len(quarantined)

    results: list[SweepResult | None] = [None] * len(points)
    for i in range(len(points)):
        present = [
            reports[(i, si)]
            for si in range(len(seeds))
            if (i, si) in reports
        ]
        if not present:
            logger.warning(
                "queue sweep point %d lost every seed; its result is None", i
            )
            continue
        result = SweepResult.from_reports(points[i], present)
        if len(present) == len(seeds):
            _result_cache[(points[i], seeds, model)] = result
        results[i] = result

    if quarantined:
        logger.warning(
            "queue sweep finished with %d dead-lettered cells", len(quarantined)
        )
    logger.info("queue sweep complete: %s", stats.summary_line())
    return ResilientSweepOutcome(results, tuple(quarantined), stats)
