"""Aggregated simulation reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.metrics.capacity import CapacitySummary
from repro.metrics.timing import (
    BoundedSlowdownRule,
    GAMMA_SECONDS,
    JobRecord,
    TimingSummary,
    summarize_timing,
)


@dataclass(slots=True)
class Counters:
    """Event counters accumulated by the simulator."""

    failures_total: int = 0          # failure events processed
    failures_hit_jobs: int = 0       # failures that killed a running job
    failures_idle: int = 0           # failures on free nodes
    job_kills: int = 0               # job executions destroyed
    migrations: int = 0              # compaction episodes committed
    jobs_migrated: int = 0           # running jobs moved by compaction
    backfills: int = 0               # out-of-order starts
    scheduler_passes: int = 0
    checkpoint_restores: int = 0     # restarts that resumed saved work


@dataclass(frozen=True)
class SimulationReport:
    """Everything one simulation run reports.

    ``records`` carries per-job accounting; ``timing`` and ``capacity``
    are the aggregates the paper plots; ``counters`` explain *why* a run
    behaved as it did (kills, migrations, backfills).
    """

    policy: str
    workload: str
    n_failures: int
    records: tuple[JobRecord, ...]
    timing: TimingSummary
    capacity: CapacitySummary
    counters: Counters
    parameters: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        policy: str,
        workload: str,
        n_failures: int,
        records: Sequence[JobRecord],
        capacity: CapacitySummary,
        counters: Counters,
        parameters: dict | None = None,
        gamma: float = GAMMA_SECONDS,
        slowdown_rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD,
    ) -> "SimulationReport":
        return cls(
            policy=policy,
            workload=workload,
            n_failures=n_failures,
            records=tuple(records),
            timing=summarize_timing(records, gamma, slowdown_rule),
            capacity=capacity,
            counters=counters,
            parameters=dict(parameters or {}),
        )

    def summary_line(self) -> str:
        """One-line digest for sweep tables."""
        return (
            f"{self.policy:<12} {self.workload:<16} fail={self.n_failures:<6} "
            f"slowdown={self.timing.avg_bounded_slowdown:8.2f} "
            f"resp={self.timing.avg_response:9.0f}s "
            f"util={self.capacity.utilized:.3f} "
            f"unused={self.capacity.unused:.3f} lost={self.capacity.lost:.3f}"
        )
