"""Timing and capacity metrics — §3.4 and §6.1 of the paper."""

from __future__ import annotations

from repro.metrics.timing import (
    BoundedSlowdownRule,
    GAMMA_SECONDS,
    bounded_slowdown,
    JobRecord,
    TimingSummary,
    summarize_timing,
)
from repro.metrics.capacity import CapacityTracker, CapacitySummary
from repro.metrics.report import SimulationReport, Counters
from repro.metrics.serialize import (
    report_to_dict,
    report_from_dict,
    report_to_json,
    report_from_json,
)

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "report_to_json",
    "report_from_json",
    "BoundedSlowdownRule",
    "GAMMA_SECONDS",
    "bounded_slowdown",
    "JobRecord",
    "TimingSummary",
    "summarize_timing",
    "CapacityTracker",
    "CapacitySummary",
    "SimulationReport",
    "Counters",
]
