"""JSON-friendly serialisation of simulation reports.

Downstream tooling (plotters, dashboards, regression trackers) wants
reports as plain data.  :func:`report_to_dict` flattens a
:class:`~repro.metrics.report.SimulationReport` into JSON-serialisable
primitives; :func:`report_from_dict` restores it losslessly
(round-trip property-tested).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.errors import SimulationError
from repro.metrics.capacity import CapacitySummary
from repro.metrics.report import Counters, SimulationReport
from repro.metrics.timing import JobRecord, TimingSummary

#: Schema version embedded in every export; bump on breaking change.
SCHEMA_VERSION = 1


def report_to_dict(report: SimulationReport) -> dict[str, Any]:
    """Flatten a report to JSON-serialisable primitives."""
    return {
        "schema": SCHEMA_VERSION,
        "policy": report.policy,
        "workload": report.workload,
        "n_failures": report.n_failures,
        "parameters": dict(report.parameters),
        "timing": dataclasses.asdict(report.timing),
        "capacity": dataclasses.asdict(report.capacity),
        "counters": dataclasses.asdict(report.counters),
        "records": [dataclasses.asdict(r) for r in report.records],
    }


def report_from_dict(data: dict[str, Any]) -> SimulationReport:
    """Inverse of :func:`report_to_dict`."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise SimulationError(
            f"unsupported report schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    return SimulationReport(
        policy=data["policy"],
        workload=data["workload"],
        n_failures=data["n_failures"],
        records=tuple(JobRecord(**r) for r in data["records"]),
        timing=TimingSummary(**data["timing"]),
        capacity=CapacitySummary(**data["capacity"]),
        counters=Counters(**data["counters"]),
        parameters=dict(data["parameters"]),
    )


def report_to_json(report: SimulationReport, indent: int | None = None) -> str:
    """Serialise a report to a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def report_from_json(text: str) -> SimulationReport:
    """Parse a report from :func:`report_to_json` output."""
    return report_from_dict(json.loads(text))
