"""Per-job timing metrics: wait, response and bounded slowdown.

The paper defines (§3.4): wait ``t_w = t_s - t_a``, response
``t_r = t_f - t_a`` and bounded slowdown
``t_b = max(t_r, Γ) / min(t_e, Γ)`` with ``Γ = 10 s``.

The printed denominator ``min(t_e, Γ)`` pins the denominator at Γ for
every job longer than 10 seconds, which is the standard bounded-slowdown
formula with ``max`` typo'd (Feitelson et al.'s definition divides by
``max(t_e, Γ)``).  :data:`BoundedSlowdownRule.STANDARD` (default) uses
``max``; :data:`BoundedSlowdownRule.PAPER_LITERAL` reproduces the
verbatim formula for the ablation bench.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError

#: The paper's Γ threshold for bounded slowdown.
GAMMA_SECONDS = 10.0


class BoundedSlowdownRule(enum.Enum):
    """Denominator convention for bounded slowdown."""

    STANDARD = "standard"          # max(t_r, Γ) / max(t_e, Γ)
    PAPER_LITERAL = "paper-literal"  # max(t_r, Γ) / min(t_e, Γ)


def bounded_slowdown(
    response: float,
    runtime: float,
    gamma: float = GAMMA_SECONDS,
    rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD,
) -> float:
    """Bounded slowdown of one job.

    Parameters
    ----------
    response:
        ``t_r``: finish minus arrival, including requeue/restart delays.
    runtime:
        The job's execution time ``t_e`` (actual, per §3.2: the estimate
        is replaced by the measured value on completion).
    """
    if response < 0 or runtime <= 0:
        raise SimulationError(
            f"invalid response/runtime pair ({response}, {runtime})"
        )
    numerator = max(response, gamma)
    if rule is BoundedSlowdownRule.STANDARD:
        return numerator / max(runtime, gamma)
    return numerator / min(runtime, gamma)


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Final accounting for one completed job."""

    job_id: int
    size: int
    arrival: float
    start: float        # start of the final (successful) execution
    finish: float
    runtime: float      # actual execution time of one successful run
    estimate: float
    restarts: int       # failure-induced re-executions
    lost_work: float    # node-seconds destroyed by failures/migrations

    @property
    def wait(self) -> float:
        """``t_w``: arrival to *final* start (includes restart waits)."""
        return self.start - self.arrival

    @property
    def response(self) -> float:
        """``t_r = t_f - t_a``."""
        return self.finish - self.arrival

    def slowdown(
        self,
        gamma: float = GAMMA_SECONDS,
        rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD,
    ) -> float:
        return bounded_slowdown(self.response, self.runtime, gamma, rule)


@dataclass(frozen=True, slots=True)
class TimingSummary:
    """Aggregate timing metrics over completed jobs."""

    n_jobs: int
    avg_wait: float
    avg_response: float
    avg_bounded_slowdown: float
    max_bounded_slowdown: float
    total_restarts: int
    total_lost_work: float

    def __str__(self) -> str:  # pragma: no cover - display sugar
        return (
            f"jobs={self.n_jobs} wait={self.avg_wait:.1f}s "
            f"resp={self.avg_response:.1f}s slowdown={self.avg_bounded_slowdown:.2f} "
            f"restarts={self.total_restarts}"
        )


def summarize_timing(
    records: Sequence[JobRecord],
    gamma: float = GAMMA_SECONDS,
    rule: BoundedSlowdownRule = BoundedSlowdownRule.STANDARD,
) -> TimingSummary:
    """Average the paper's three timing metrics over ``records``."""
    if not records:
        return TimingSummary(0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
    n = len(records)
    slowdowns = [r.slowdown(gamma, rule) for r in records]
    return TimingSummary(
        n_jobs=n,
        avg_wait=math.fsum(r.wait for r in records) / n,
        avg_response=math.fsum(r.response for r in records) / n,
        avg_bounded_slowdown=math.fsum(slowdowns) / n,
        max_bounded_slowdown=max(slowdowns),
        total_restarts=sum(r.restarts for r in records),
        total_lost_work=math.fsum(r.lost_work for r in records),
    )
