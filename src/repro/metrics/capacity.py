"""System capacity accounting — §6.1 of the paper.

Over the simulation span ``T = max_j t_j^f - min_j t_j^a`` with machine
size ``N``:

* ``ω_util  = Σ_j s_j · t_j^e / (T · N)`` — useful work actually
  accomplished (each job counted once, at its successful execution);
* ``ω_unused = ∫ max(0, f(t) - q(t)) dt / (T · N)`` — capacity idle for
  *lack of demand*: free nodes exceeding what the wait queue requests;
* ``ω_lost  = 1 - ω_util - ω_unused`` — everything else: work destroyed
  by failures, fragmentation that keeps requesting jobs waiting, and
  scheduling delay.

``f(t)`` (free nodes) and ``q(t)`` (nodes requested by waiting jobs) are
piecewise-constant between simulator events; :class:`CapacityTracker`
accumulates the integral exactly from state-change samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


class CapacityTracker:
    """Exact integrator of ``max(0, f(t) - q(t))`` over the simulation.

    Call :meth:`record` whenever ``f`` or ``q`` changes (the integrand is
    held constant since the previous record).  Out-of-order times are
    rejected — the simulator is event-driven, so time never rewinds.
    """

    __slots__ = ("n_nodes", "_last_time", "_free", "_queued", "_surplus_integral", "_started")

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise SimulationError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = n_nodes
        self._last_time = 0.0
        self._free = n_nodes
        self._queued = 0
        self._surplus_integral = 0.0
        self._started = False

    def record(self, time: float, free: int, queued: int) -> None:
        """State change: at ``time`` the machine has ``free`` free nodes
        and the wait queue requests ``queued`` nodes in total."""
        if not 0 <= free <= self.n_nodes:
            raise SimulationError(f"free={free} out of range [0, {self.n_nodes}]")
        if queued < 0:
            raise SimulationError(f"queued={queued} must be >= 0")
        if not self._started:
            self._started = True
        elif time < self._last_time:
            raise SimulationError(
                f"capacity record time went backwards ({time} < {self._last_time})"
            )
        else:
            dt = time - self._last_time
            self._surplus_integral += dt * max(0, self._free - self._queued)
        self._last_time = time
        self._free = free
        self._queued = queued

    def close(self, end_time: float) -> None:
        """Extend the final segment to the simulation end."""
        self.record(end_time, self._free, self._queued)

    def surplus_integral(self) -> float:
        """``∫ max(0, f - q) dt`` accumulated so far (node-seconds)."""
        return self._surplus_integral


@dataclass(frozen=True, slots=True)
class CapacitySummary:
    """The paper's three capacity fractions (they sum to 1)."""

    utilized: float
    unused: float
    lost: float
    span: float            # T, seconds
    useful_work: float     # node-seconds

    def __post_init__(self) -> None:
        for name, v in (("utilized", self.utilized), ("unused", self.unused)):
            if v < -1e-9:
                raise SimulationError(f"{name} fraction negative: {v}")

    @classmethod
    def from_tracker(
        cls,
        tracker: CapacityTracker,
        useful_work: float,
        start_time: float,
        end_time: float,
    ) -> "CapacitySummary":
        """Finalize capacity fractions over ``[start_time, end_time]``."""
        span = end_time - start_time
        if span <= 0:
            return cls(0.0, 0.0, 0.0, 0.0, useful_work)
        denom = span * tracker.n_nodes
        utilized = useful_work / denom
        unused = tracker.surplus_integral() / denom
        lost = 1.0 - utilized - unused
        return cls(utilized, unused, lost, span, useful_work)

    def __str__(self) -> str:  # pragma: no cover - display sugar
        return (
            f"util={self.utilized:.3f} unused={self.unused:.3f} "
            f"lost={self.lost:.3f} (T={self.span:.0f}s)"
        )
