"""Durable checkpoint store for completed sweep cells.

A sweep is a grid of independent ``(SweepPoint, seed)`` cells, each a
deterministic function of its inputs.  :class:`CellStore` persists every
completed cell's :class:`~repro.metrics.report.SimulationReport` to its
own JSON file so a killed sweep resumes exactly where it stopped: the
restored reports round-trip losslessly (Python float ``repr`` is
shortest-round-trip), so a resumed sweep's :class:`SweepResult` values
are bitwise-identical to an uninterrupted run's.

Three properties carry the design:

* **Content-addressed keys** — :func:`cell_key` hashes a canonical
  description of the point (including every *behavioural*
  ``SimulationConfig`` field), the seed and the failure model.  Any
  change to an input that could change the report changes the key, so a
  stale checkpoint directory can never poison a different sweep.
  Observational flags (``trace``/``profile``/invariant checking) are
  excluded: the report is bit-identical either way, so toggling them
  between runs still hits the cache.
* **Atomic writes** — each cell is written to a temp file in the same
  directory, flushed, fsynced and ``os.replace``d into place (and the
  directory fsynced).  A reader never observes a partial cell file; an
  interrupt between write and rename leaves at most a ``.tmp-`` file,
  which is removed on the error path and ignored by readers.
* **Verified reads** — every file carries a schema version, its own key
  and a SHA-256 checksum of the canonical payload.  Truncated, garbled
  or tampered files (and files renamed to the wrong key) are *detected
  and treated as misses* — the cell is recomputed, never trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import ResilienceError
from repro.metrics.report import SimulationReport
from repro.metrics.serialize import report_from_dict, report_to_dict
from repro.obs.log import get_logger
from repro.obs.metrics import count_active

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.experiments.sweep import SweepPoint
    from repro.failures.synthetic import BurstFailureModel

logger = get_logger(__name__)

#: Version of the on-disk cell envelope; bump on breaking change.  Old
#: checkpoints are recomputed, not migrated — cells are cheap relative
#: to the cost of a wrong migration.
CHECKPOINT_SCHEMA_VERSION = 1

#: Prefix of in-flight temp files inside the cells directory; readers
#: skip these and :meth:`CellStore.validate` reports leftovers.
TMP_PREFIX = ".tmp-"


def _canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _payload_digest(payload: dict[str, Any]) -> str:
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def describe_point(point: "SweepPoint") -> dict[str, Any]:
    """Canonical JSON-able description of a sweep point.

    Covers every field that feeds the simulation, including the nested
    :class:`SimulationConfig` — but only its *behavioural* fields; the
    observational flags (``trace``, ``profile``, ``check_invariants``,
    ``strict_invariants``) are excluded because the report is
    bit-identical with them on or off.
    """
    config = point.config
    return {
        "site": point.site,
        "n_jobs": point.n_jobs,
        "load_scale": point.load_scale,
        "n_failures": point.n_failures,
        "policy": point.policy,
        "parameter": point.parameter,
        "pf_rule": point.pf_rule.name,
        "config": {
            "dims": list(config.dims.as_tuple()),
            "backfill": config.backfill.value,
            "migration": config.migration,
            "migration_cost_s": config.migration_cost_s,
            "gamma": config.gamma,
            "slowdown_rule": config.slowdown_rule.value,
            "checkpoint": {
                "mode": config.checkpoint.mode.value,
                "interval_s": config.checkpoint.interval_s,
                "overhead_s": config.checkpoint.overhead_s,
                "hit_probability": config.checkpoint.hit_probability,
            },
            "seed": config.seed,
            "max_events": config.max_events,
        },
    }


def describe_model(model: "BurstFailureModel") -> dict[str, Any]:
    """Canonical description of the failure model."""
    return dataclasses.asdict(model)


def point_from_dict(data: dict[str, Any]) -> "SweepPoint":
    """Reconstruct a :class:`SweepPoint` from :func:`describe_point` output.

    The inverse covers exactly the behavioural fields the description
    carries; observational config flags (``trace``/``profile``/invariant
    checking) and the bitwise-equivalent engine toggles
    (``incremental_index``/``batch_events``) come back as defaults —
    by the store's own contract the report is bit-identical regardless,
    which is what lets queue workers rebuild a cell from its task record
    and still land a checkpoint the driver merges bitwise with serial.
    """
    from repro.checkpoint.model import CheckpointConfig, CheckpointMode
    from repro.core.config import BackfillMode, SimulationConfig
    from repro.experiments.sweep import SweepPoint
    from repro.geometry.coords import TorusDims
    from repro.metrics.timing import BoundedSlowdownRule
    from repro.prediction.base import PartitionFailureRule

    try:
        cfg = data["config"]
        config = SimulationConfig(
            dims=TorusDims(*cfg["dims"]),
            backfill=BackfillMode(cfg["backfill"]),
            migration=cfg["migration"],
            migration_cost_s=cfg["migration_cost_s"],
            gamma=cfg["gamma"],
            slowdown_rule=BoundedSlowdownRule(cfg["slowdown_rule"]),
            checkpoint=CheckpointConfig(
                mode=CheckpointMode(cfg["checkpoint"]["mode"]),
                interval_s=cfg["checkpoint"]["interval_s"],
                overhead_s=cfg["checkpoint"]["overhead_s"],
                hit_probability=cfg["checkpoint"]["hit_probability"],
            ),
            seed=cfg["seed"],
            max_events=cfg["max_events"],
        )
        return SweepPoint(
            site=data["site"],
            n_jobs=data["n_jobs"],
            load_scale=data["load_scale"],
            n_failures=data["n_failures"],
            policy=data["policy"],
            parameter=data["parameter"],
            pf_rule=PartitionFailureRule[data["pf_rule"]],
            config=config,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ResilienceError(
            f"cannot reconstruct sweep point from record: {exc}"
        ) from exc


def model_from_dict(data: dict[str, Any]) -> "BurstFailureModel":
    """Reconstruct a failure model from :func:`describe_model` output."""
    from repro.failures.synthetic import BurstFailureModel

    try:
        return BurstFailureModel(**data)
    except TypeError as exc:
        raise ResilienceError(
            f"cannot reconstruct failure model from record: {exc}"
        ) from exc


def cell_key(point: "SweepPoint", seed: int, model: "BurstFailureModel") -> str:
    """Content hash identifying one ``(point, seed)`` cell's inputs.

    Includes the report schema version: a serialisation change
    invalidates old checkpoints instead of restoring them wrongly.
    """
    from repro.metrics.serialize import SCHEMA_VERSION as REPORT_SCHEMA_VERSION

    material = {
        "checkpoint_schema": CHECKPOINT_SCHEMA_VERSION,
        "report_schema": REPORT_SCHEMA_VERSION,
        "point": describe_point(point),
        "seed": seed,
        "model": describe_model(model),
    }
    return hashlib.sha256(_canonical_json(material).encode("utf-8")).hexdigest()


class CellStore:
    """One checkpoint directory of completed sweep cells.

    Layout::

        <root>/cells/<64-hex-key>.json   one file per completed cell
        <root>/quarantine.json           poison cells (see retry module)

    Instance counters (``hits``/``misses``/``corrupt``) track the
    store's resume behaviour for the run; the same events flow into the
    active :mod:`repro.obs` metrics registry when one is installed.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        try:
            self.cells_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ResilienceError(
                f"cannot create checkpoint directory {self.root}: {exc}"
            ) from exc
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    @property
    def quarantine_path(self) -> Path:
        return self.root / "quarantine.json"

    def path_for(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def has(self, key: str) -> bool:
        """Cheap existence probe (no verification, no counter traffic).

        Queue workers use this to skip cells another worker already
        completed; the driver's merge still goes through the verified
        :meth:`get`, so a corrupt file can only cost a recomputation,
        never poison a result.
        """
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._cell_files())

    def keys(self) -> list[str]:
        """Keys of every (not necessarily valid) stored cell."""
        return sorted(path.stem for path in self._cell_files())

    def _cell_files(self) -> Iterator[Path]:
        for path in self.cells_dir.iterdir():
            if path.suffix == ".json" and not path.name.startswith(TMP_PREFIX):
                yield path

    # ------------------------------------------------------------------
    def get(self, key: str) -> SimulationReport | None:
        """Restore one cell; ``None`` on miss *or* any integrity failure.

        A corrupted checkpoint (truncated file, garbled JSON, checksum
        or key mismatch, unknown schema) is logged, counted and treated
        as a miss — the caller recomputes the cell.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            count_active("resilience.checkpoint.miss")
            return None
        except OSError as exc:
            return self._reject(key, f"unreadable ({exc})")
        except UnicodeDecodeError:
            return self._reject(key, "not valid UTF-8 (garbled)")
        try:
            envelope = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return self._reject(key, "not valid JSON (truncated or garbled)")
        if not isinstance(envelope, dict):
            return self._reject(key, "envelope is not an object")
        if envelope.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            return self._reject(
                key, f"unsupported schema {envelope.get('schema')!r}"
            )
        if envelope.get("key") != key:
            return self._reject(
                key, f"key mismatch (file claims {envelope.get('key')!r})"
            )
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return self._reject(key, "missing report payload")
        if envelope.get("payload_sha256") != _payload_digest(payload):
            return self._reject(key, "payload checksum mismatch")
        try:
            report = report_from_dict(payload)
        except Exception as exc:  # schema'd but unrestorable payload
            return self._reject(key, f"payload does not restore ({exc})")
        self.hits += 1
        count_active("resilience.checkpoint.hit")
        return report

    def _reject(self, key: str, reason: str) -> None:
        self.corrupt += 1
        self.misses += 1
        count_active("resilience.checkpoint.corrupt")
        count_active("resilience.checkpoint.miss")
        logger.warning(
            "checkpoint cell %s rejected: %s; recomputing", key[:12], reason
        )
        return None

    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        report: SimulationReport,
        *,
        point_index: int | None = None,
        seed: int | None = None,
    ) -> Path:
        """Persist one completed cell atomically.

        ``point_index``/``seed`` are human-facing annotations only; they
        are deliberately outside the checksum (integrity covers the
        payload a resume would trust).
        """
        payload = report_to_dict(report)
        envelope = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "key": key,
            "point_index": point_index,
            "seed": seed,
            "payload": payload,
            "payload_sha256": _payload_digest(payload),
        }
        path = self.path_for(key)
        tmp = self.cells_dir / f"{TMP_PREFIX}{key}-{os.getpid()}.json"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            # SIGINT lands as KeyboardInterrupt between bytecodes, so
            # this cleanup runs: no stray temp files after an interrupt.
            tmp.unlink(missing_ok=True)
            raise
        self._fsync_dir()
        count_active("resilience.checkpoint.write")
        return path

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.cells_dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Integrity-check every stored cell; one message per problem.

        Used by the interrupt tests (and available for manual forensic
        checks): after a SIGINT there must be nothing but complete,
        checksummed cell files in the directory.
        """
        problems: list[str] = []
        for path in sorted(self.cells_dir.iterdir()):
            if path.name.startswith(TMP_PREFIX):
                problems.append(f"{path.name}: leftover temp file")
                continue
            # A forensic scan must not skew the run's resume counters.
            before = (self.hits, self.misses, self.corrupt)
            restored = self.get(path.stem)
            self.hits, self.misses, self.corrupt = before
            if restored is None:
                problems.append(f"{path.name}: fails integrity check")
        return problems
