"""Deterministic chaos injection for the sweep stack.

The paper's machines fail; this module makes *our own experiment
pipeline* fail on demand so the resilience machinery can be tested the
same way the schedulers are — deterministically.  A
:class:`ChaosConfig` (default: everything off) schedules four fault
kinds against named ``(point_index, seed_index)`` cells or seeded rates:

* **kill** — ``os._exit`` inside a pool worker, breaking the process
  pool exactly the way an OOM-kill or segfault does;
* **raise** — an in-cell :class:`~repro.errors.ChaosError`, modelling a
  poison cell (always) or a transient fault (first attempts only);
* **delay** — a sleep before the cell body, for timeout and
  interrupt-timing tests;
* **corrupt** — damage the cell's just-written checkpoint file, so
  resume paths must prove they verify before trusting.

Determinism contract: every decision is a pure function of the config,
the cell id and the attempt number (rates hash through SHA-256, never
``random``), so a chaos run is exactly reproducible regardless of
worker scheduling.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import ChaosError, ResilienceError
from repro.obs.log import get_logger
from repro.obs.metrics import count_active
from repro.resilience.retry import _unit_hash

logger = get_logger(__name__)

#: Exit status used for injected worker kills; distinctive so pool
#: breakage caused by chaos is recognisable in test failures.
KILL_EXIT_CODE = 86

CellId = tuple[int, int]


@dataclass(frozen=True)
class ChaosConfig:
    """What to break, where, and how often.  Everything defaults off.

    ``*_cells`` name explicit ``(point_index, seed_index)`` targets;
    ``kill_rate``/``raise_rate`` hit a seeded pseudo-random subset of
    first attempts instead.  ``kill_attempts``/``raise_attempts`` bound
    how many attempts of a targeted cell are hit — an attempt count at
    or above :attr:`RetryPolicy.max_attempts` makes a *poison* cell.
    """

    seed: int = 0
    kill_cells: tuple[CellId, ...] = ()
    kill_attempts: int = 1
    kill_rate: float = 0.0
    raise_cells: tuple[CellId, ...] = ()
    raise_attempts: int = 1
    raise_rate: float = 0.0
    delay_cells: tuple[CellId, ...] = ()
    delay_s: float = 0.01
    corrupt_cells: tuple[CellId, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.kill_rate <= 1.0 or not 0.0 <= self.raise_rate <= 1.0:
            raise ResilienceError("chaos rates must be in [0, 1]")
        if self.kill_attempts < 1 or self.raise_attempts < 1:
            raise ResilienceError("chaos attempt counts must be >= 1")
        if self.delay_s < 0:
            raise ResilienceError("delay_s must be >= 0")

    @property
    def enabled(self) -> bool:
        return bool(
            self.kill_cells
            or self.kill_rate
            or self.raise_cells
            or self.raise_rate
            or self.delay_cells
            or self.corrupt_cells
        )

    # ------------------------------------------------------------------
    def should_kill(self, cell: CellId, attempt: int) -> bool:
        if tuple(cell) in self.kill_cells and attempt < self.kill_attempts:
            return True
        # Rates only strike first attempts, so retries always converge.
        return (
            self.kill_rate > 0.0
            and attempt == 0
            and _unit_hash(self.seed, "kill", tuple(cell)) < self.kill_rate
        )

    def should_raise(self, cell: CellId, attempt: int) -> bool:
        if tuple(cell) in self.raise_cells and attempt < self.raise_attempts:
            return True
        return (
            self.raise_rate > 0.0
            and attempt == 0
            and _unit_hash(self.seed, "raise", tuple(cell)) < self.raise_rate
        )

    def delay_for(self, cell: CellId) -> float:
        return self.delay_s if tuple(cell) in self.delay_cells else 0.0

    def should_corrupt(self, cell: CellId) -> bool:
        return tuple(cell) in self.corrupt_cells


def inject_pre_cell(
    chaos: ChaosConfig | None, cell: CellId, attempt: int, in_worker: bool
) -> None:
    """Apply scheduled faults before one cell execution.

    Kills only fire inside pool workers (``in_worker``): after the
    executor degrades to in-process execution a killer cell runs clean —
    which is precisely the degradation semantics the tests assert.
    """
    if chaos is None or not chaos.enabled:
        return
    delay = chaos.delay_for(cell)
    if delay > 0.0:
        count_active("resilience.chaos.delays")
        time.sleep(delay)
    if chaos.should_kill(cell, attempt):
        if in_worker:
            os._exit(KILL_EXIT_CODE)
        logger.debug("chaos kill of cell %s skipped (in-process)", cell)
    if chaos.should_raise(cell, attempt):
        count_active("resilience.chaos.raises")
        raise ChaosError(
            f"chaos: injected failure in cell {tuple(cell)} attempt {attempt}"
        )


def corrupt_checkpoint(path: os.PathLike | str, chaos: ChaosConfig, cell: CellId) -> None:
    """Deterministically damage a checkpoint file in place.

    Half the cells (by seeded hash) get truncated — the crash-mid-write
    shape — and half get a byte overwritten — the bit-rot shape.  Both
    must be detected by :meth:`CellStore.get` and recomputed.
    """
    data = bytearray(open(path, "rb").read())
    u = _unit_hash(chaos.seed, "corrupt", tuple(cell))
    if not data:
        return
    if u < 0.5:
        data = data[: max(1, len(data) // 2)]
    else:
        # Damage the trailing checksum region: always either a checksum
        # mismatch or a JSON syntax error, never silently benign.
        offset = len(data) - 1 - (int(u * 1000) % min(40, len(data)))
        data[offset] ^= 0x5A
    with open(path, "wb") as handle:
        handle.write(data)
    count_active("resilience.chaos.corruptions")
    logger.debug("chaos corrupted checkpoint for cell %s", cell)
