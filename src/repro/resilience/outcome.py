"""Result types for resilient sweep execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.resilience.retry import QuarantineEntry

if TYPE_CHECKING:  # pragma: no cover - type-only cycle
    from repro.experiments.sweep import SweepResult


@dataclass
class SweepRunStats:
    """What the resilience machinery did during one sweep.

    Checkpoint counters mirror the :class:`CellStore` instance counters;
    retry counters separate *in-cell failures* (the cell itself raised)
    from *resubmits* (the cell was lost when its worker pool broke).
    ``mode`` records how the executor actually ran the cells —
    ``"warm"`` (persistent warm pool with shared-memory arenas, the
    fast-path default), ``"parallel"`` (cold per-sweep worker pool),
    ``"queue"`` (directory-backed multi-host work queue),
    ``"serial"`` (in-process, whether by request, platform limits, or
    the small-sweep parallel cutover) or ``"cached"`` (every cell
    restored/memoised, nothing executed).  ``workers_used`` is the
    worker count the chosen mode actually employed (1 for serial),
    ``chunk_size`` the cells-per-task the fan-out used, and
    ``arena_bytes`` the total shared-memory payload shipped by the warm
    path — benches record all three so a run's regime is auditable.
    """

    checkpoint_hits: int = 0
    checkpoint_misses: int = 0
    checkpoint_corrupt: int = 0
    cells_computed: int = 0
    retries: int = 0
    resubmits: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    quarantined: int = 0
    mode: str = ""
    workers_used: int = 1
    chunk_size: int = 0
    arena_bytes: int = 0
    pool_reused: bool = False

    def summary_line(self) -> str:
        parts = [
            f"mode={self.mode or 'unknown'}",
            f"workers={self.workers_used}",
            f"cells computed={self.cells_computed}",
            f"checkpoint hits={self.checkpoint_hits}"
            f" misses={self.checkpoint_misses}"
            f" corrupt={self.checkpoint_corrupt}",
            f"retries={self.retries} resubmits={self.resubmits}",
            f"pool rebuilds={self.pool_rebuilds}",
        ]
        if self.degraded:
            parts.append("degraded to in-process")
        if self.quarantined:
            parts.append(f"quarantined={self.quarantined}")
        return "; ".join(parts)


@dataclass(frozen=True)
class ResilientSweepOutcome:
    """Everything a resilient sweep produced.

    ``results`` aligns with the input points; an entry is ``None`` only
    when *every* seed of that point was quarantined.  A point with some
    quarantined seeds averages over the surviving ones (its
    ``n_seeds`` says how many).
    """

    results: "list[SweepResult | None]"
    quarantined: tuple[QuarantineEntry, ...] = ()
    stats: SweepRunStats = field(default_factory=SweepRunStats)

    @property
    def complete(self) -> bool:
        """True when no cell was lost to quarantine."""
        return not self.quarantined and all(r is not None for r in self.results)


def incomplete_points(
    outcome: ResilientSweepOutcome, seeds: Sequence[int]
) -> list[int]:
    """Indices of points missing at least one seed's cell."""
    short = {
        i
        for i, r in enumerate(outcome.results)
        if r is None or r.n_seeds < len(seeds)
    }
    return sorted(short)
