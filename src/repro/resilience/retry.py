"""Retry policy, per-cell timeout and quarantine for resilient sweeps.

The executors in :mod:`repro.experiments.parallel` treat a cell failure
as an event to schedule around, not a reason to abort: a cell lost to a
worker crash or an in-cell exception is resubmitted under an
exponential-backoff schedule, and a cell that keeps failing ("poison")
is quarantined into a structured ``quarantine.json`` so the rest of the
sweep still completes.

Everything here is deterministic by construction: backoff jitter is a
pure hash of ``(jitter_seed, cell, attempt)`` — two runs of the same
sweep produce the same schedule, and no wall clock or global RNG is
consulted — which keeps resilient sweeps as replayable as the
simulations they run.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.errors import CellTimeoutError, ResilienceError

#: Version of the quarantine.json document; bump on breaking change.
QUARANTINE_SCHEMA_VERSION = 1


def _unit_hash(*parts: Any) -> float:
    """Deterministic uniform in ``[0, 1)`` from hashable parts.

    ``hash()`` is salted per process, so this goes through SHA-256 of a
    stable string — identical across processes, platforms and runs.
    """
    text = ":".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the sweep executors respond to cell failures.

    Parameters
    ----------
    max_attempts:
        Total executions allowed per cell (first try included) before it
        is quarantined.
    base_delay_s / backoff_factor / max_delay_s:
        Delay before retry *k* (1-based) is
        ``min(base * factor**(k-1), max_delay)``, then jittered.
    jitter_fraction:
        Each delay is scaled by ``1 + jitter_fraction * u`` with ``u``
        a *deterministic* uniform in ``[-1, 1)`` seeded from
        ``(jitter_seed, cell, attempt)`` — decorrelates retry storms
        across cells without sacrificing replayability.
    cell_timeout_s:
        Wall-clock budget per cell execution (``None`` = unlimited).
        Enforced with ``SIGALRM`` where available; a timed-out cell
        fails with :class:`~repro.errors.CellTimeoutError` and follows
        the ordinary retry/quarantine path.
    max_pool_rebuilds:
        Worker-pool breakages tolerated before the executor degrades to
        in-process execution for the remaining cells.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    backoff_factor: float = 2.0
    max_delay_s: float = 30.0
    jitter_fraction: float = 0.1
    jitter_seed: int = 0
    cell_timeout_s: float | None = None
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ResilienceError("retry delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ResilienceError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ResilienceError("jitter_fraction must be in [0, 1)")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ResilienceError("cell_timeout_s must be positive")
        if self.max_pool_rebuilds < 0:
            raise ResilienceError("max_pool_rebuilds must be >= 0")

    # ------------------------------------------------------------------
    def backoff_s(self, cell: tuple[int, int], attempt: int) -> float:
        """Delay before resubmitting ``cell`` after its ``attempt``-th
        failure (1-based).  Pure function of its arguments."""
        if attempt < 1:
            raise ResilienceError("attempt is 1-based")
        raw = min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
            self.max_delay_s,
        )
        if raw <= 0.0 or self.jitter_fraction == 0.0:
            return raw
        u = _unit_hash(self.jitter_seed, tuple(cell), attempt)
        return raw * (1.0 + self.jitter_fraction * (2.0 * u - 1.0))

    def schedule(self, cell: tuple[int, int]) -> list[float]:
        """The full backoff schedule one cell could experience."""
        return [self.backoff_s(cell, k) for k in range(1, self.max_attempts)]


@contextmanager
def cell_timeout(seconds: float | None) -> Iterator[None]:
    """Bound one cell execution to ``seconds`` of wall clock.

    Uses ``SIGALRM``/``setitimer``, so it only engages on the main
    thread of a POSIX process (true for pool workers and for in-process
    sweeps); elsewhere it is a documented no-op.  The previous handler
    and timer are always restored.
    """
    if (
        seconds is None
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        raise CellTimeoutError(f"cell exceeded its {seconds}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuarantineEntry:
    """One poison cell, with enough context to reproduce it."""

    point_index: int
    seed_index: int
    seed: int
    attempts: int
    error_type: str
    error: str
    key: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "point_index": self.point_index,
            "seed_index": self.seed_index,
            "seed": self.seed,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error": self.error,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QuarantineEntry":
        return cls(**data)


class Quarantine:
    """Ordered collection of poison cells for one sweep run."""

    def __init__(self) -> None:
        self.entries: list[QuarantineEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: QuarantineEntry) -> None:
        self.entries.append(entry)

    def cells(self) -> set[tuple[int, int]]:
        return {(e.point_index, e.seed_index) for e in self.entries}

    def write(self, path: str | Path) -> Path:
        """Write ``quarantine.json`` atomically (written even when
        empty, so tooling can rely on its existence after a
        checkpointed sweep)."""
        path = Path(path)
        document = {
            "schema": QUARANTINE_SCHEMA_VERSION,
            "entries": [
                e.to_dict()
                for e in sorted(
                    self.entries, key=lambda e: (e.point_index, e.seed_index)
                )
            ],
        }
        tmp = path.with_name(f".tmp-{path.name}-{os.getpid()}")
        try:
            tmp.write_text(json.dumps(document, indent=2), encoding="utf-8")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Quarantine":
        """Inverse of :meth:`write`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("schema") != QUARANTINE_SCHEMA_VERSION:
            raise ResilienceError(
                f"unsupported quarantine schema {data.get('schema')!r}"
            )
        quarantine = cls()
        for entry in data.get("entries", []):
            quarantine.add(QuarantineEntry.from_dict(entry))
        return quarantine
