"""Fault tolerance for the experiment pipeline itself.

The paper's premise is that real machines fail mid-run; this package
gives the sweep runner the same awareness: durable per-cell checkpoints
(:mod:`~repro.resilience.store`), retry with deterministic backoff and
quarantine (:mod:`~repro.resilience.retry`), and a seeded
chaos-injection layer (:mod:`~repro.resilience.chaos`) that the test
suites drive.  See ``README.md`` ("Resilient sweeps") for the user-level
story and :mod:`repro.experiments.parallel` for the executor that wires
it all together.
"""

from repro.resilience.chaos import (
    KILL_EXIT_CODE,
    ChaosConfig,
    corrupt_checkpoint,
    inject_pre_cell,
)
from repro.resilience.outcome import (
    ResilientSweepOutcome,
    SweepRunStats,
    incomplete_points,
)
from repro.resilience.retry import (
    QUARANTINE_SCHEMA_VERSION,
    Quarantine,
    QuarantineEntry,
    RetryPolicy,
    cell_timeout,
)
from repro.resilience.store import (
    CHECKPOINT_SCHEMA_VERSION,
    CellStore,
    cell_key,
    describe_model,
    describe_point,
    model_from_dict,
    point_from_dict,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "KILL_EXIT_CODE",
    "QUARANTINE_SCHEMA_VERSION",
    "CellStore",
    "ChaosConfig",
    "Quarantine",
    "QuarantineEntry",
    "ResilientSweepOutcome",
    "RetryPolicy",
    "SweepRunStats",
    "cell_key",
    "cell_timeout",
    "corrupt_checkpoint",
    "describe_model",
    "describe_point",
    "incomplete_points",
    "inject_pre_cell",
    "model_from_dict",
    "point_from_dict",
]
